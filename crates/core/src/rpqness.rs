//! Proposition 2.13 (bounded-exhaustive variant): is the query realized by
//! a depth-register automaton an RPQ?
//!
//! The paper's decision procedure extracts, from a restricted DRA, the
//! word language L_Q of single-branch behaviours and tests M_Q = M_{L_Q}
//! by tree-automaton equivalence.  We implement the same criterion
//! *bounded-exhaustively*: L_Q membership is decided by running the
//! program on single-branch trees, and M_Q = M_{L_Q} is verified on every
//! tree with at most `max_nodes` nodes.  This is sound for the tested
//! radius and exercises exactly the proof's characterization — see
//! DESIGN.md for why full hedge-automaton equivalence was substituted.

use st_automata::{Alphabet, Tag};
use st_trees::generate::enumerate_trees;
use st_trees::tree::Tree;

use crate::model::{preselect, DraProgram};

/// Outcome of the bounded RPQ-ness check.
#[derive(Clone, Debug)]
pub struct RpqnessReport {
    /// Whether the program behaved like a path query on every tree within
    /// the bound.
    pub path_query_up_to_bound: bool,
    /// The bound used (max nodes per tree).
    pub max_nodes: usize,
    /// On failure: a tree and a node id where selection disagrees with
    /// the single-branch language.
    pub counterexample: Option<(Tree, usize)>,
}

/// Checks whether `program`'s pre-selection behaviour coincides, on all
/// trees with ≤ `max_nodes` nodes, with the path query Q_{L_Q} induced by
/// its own single-branch behaviour (the criterion in the proof of
/// Proposition 2.13).
pub fn bounded_rpq_check<P>(program: &P, alphabet: &Alphabet, max_nodes: usize) -> RpqnessReport
where
    P: DraProgram<Input = Tag>,
{
    // Membership in L_Q: run the program on the branch tree of `word` and
    // ask whether its deepest node is pre-selected.
    let in_lq = |word: &[st_automata::Letter]| -> bool {
        let tree = Tree::branch(word).expect("nonempty path");
        let tags = st_trees::encode::markup_encode(&tree);
        let selected = preselect(program, &tags).expect("register budget");
        selected.contains(&(word.len() - 1))
    };

    for tree in enumerate_trees(alphabet, max_nodes) {
        let tags = st_trees::encode::markup_encode(&tree);
        let selected = preselect(program, &tags).expect("register budget");
        for v in tree.nodes() {
            let path = tree.root_path(v);
            let by_path = in_lq(&path);
            let by_program = selected.contains(&v.index());
            if by_path != by_program {
                return RpqnessReport {
                    path_query_up_to_bound: false,
                    max_nodes,
                    counterexample: Some((tree, v.index())),
                };
            }
        }
    }
    RpqnessReport {
        path_query_up_to_bound: true,
        max_nodes,
        counterexample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::har;
    use crate::model::{DraProgram, LoadMask, RegCmps};
    use st_automata::{compile_regex, Alphabet};

    #[test]
    fn compiled_har_programs_are_path_queries() {
        let g = Alphabet::of_chars("ab");
        for pattern in ["a.*b", "ab", ".*a.*b"] {
            let d = compile_regex(pattern, &g).unwrap();
            let program = har::compile_query_markup(&Analysis::new(&d)).unwrap();
            let report = bounded_rpq_check(&program, &g, 5);
            assert!(report.path_query_up_to_bound, "pattern {pattern}");
        }
    }

    /// A deliberately non-path query: select every *second* node opened.
    struct EverySecondNode;

    impl DraProgram for EverySecondNode {
        type Input = Tag;
        type State = bool;

        fn n_registers(&self) -> usize {
            0
        }

        fn init_state(&self) -> bool {
            false
        }

        fn is_accepting(&self, s: &bool) -> bool {
            *s
        }

        fn step(&self, s: &bool, input: Tag, _: RegCmps) -> (bool, LoadMask) {
            if input.is_open() {
                (!*s, 0)
            } else {
                (*s, 0)
            }
        }
    }

    #[test]
    fn parity_selector_is_not_a_path_query() {
        let g = Alphabet::of_chars("ab");
        let report = bounded_rpq_check(&EverySecondNode, &g, 4);
        assert!(!report.path_query_up_to_bound);
        let (tree, node) = report.counterexample.unwrap();
        assert!(node < tree.len());
    }
}
