//! Subtree extraction under pre-selection — the payoff the paper claims
//! for pre-selection semantics (Section 2.3):
//!
//! > "Pre-selection gives more flexibility in the subsequent stages of
//! > processing, allowing to return the whole subtree rooted at the
//! > selected node without additional memory cost."
//!
//! [`extract_subtrees`] streams a document through any node-selecting
//! program and forwards the full event span of each **outermost** selected
//! node.  The only extra state beyond the evaluator is the depth at which
//! the current emission started — one more register, no stack, exactly as
//! promised.

use st_automata::Tag;

use crate::error::CoreError;
use crate::model::{DraProgram, DraRunner};

/// One extracted match: the selected node's id and its complete event
/// span (opening tag through matching closing tag).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Match {
    /// Document-order id of the selected node.
    pub node: usize,
    /// The subtree's tag events, starting with the node's opening tag.
    pub events: Vec<Tag>,
}

/// Streams `tags` through `program` and extracts the subtree of every
/// outermost pre-selected node (nested matches are part of their
/// ancestor's span, as in `grep -o`).
///
/// # Errors
///
/// Propagates the runner's register-budget error.
pub fn extract_subtrees<P>(program: &P, tags: &[Tag]) -> Result<Vec<Match>, CoreError>
where
    P: DraProgram<Input = Tag>,
{
    let mut runner = DraRunner::new(program)?;
    let mut out: Vec<Match> = Vec::new();
    let mut node = 0usize;
    // Depth at which the current emission started (None = not emitting).
    // This is the "one extra register" of the paper's remark.
    let mut emitting_above: Option<i64> = None;

    for &tag in tags {
        let accepting = runner.step(tag);
        let depth = runner.depth();
        if let Some(start_depth) = emitting_above {
            out.last_mut()
                .expect("emission implies an open match")
                .events
                .push(tag);
            if depth < start_depth {
                emitting_above = None;
            }
        } else if tag.is_open() && accepting {
            out.push(Match {
                node,
                events: vec![tag],
            });
            // The subtree ends when the depth drops below the node's
            // opening depth.
            emitting_above = Some(depth);
        }
        if tag.is_open() {
            node += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::har;
    use st_automata::{compile_regex, Alphabet};
    use st_trees::encode::{markup_decode, markup_encode};
    use st_trees::{generate, oracle};

    #[test]
    fn extracts_exact_subtree_spans() {
        let g = Alphabet::of_chars("abc");
        let analysis = Analysis::new(&compile_regex(".*a", &g).unwrap());
        let program = har::compile_query_markup(&analysis).unwrap();
        let (_, t) = {
            let events: Vec<_> = st_trees::json::TermScanner::new(b"c{a{b{}c{}}b{a{}}}", &g)
                .map(|e| e.unwrap())
                .collect();
            ((), st_trees::encode::term_decode(&events).unwrap())
        };
        let tags = markup_encode(&t);
        let matches = extract_subtrees(&program, &tags).unwrap();
        // Selected nodes: both a's (ids 1 and 5); they are not nested, so
        // both are extracted.
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].node, 1);
        // First a's subtree: a{b{}c{}} → 6 tags.
        assert_eq!(matches[0].events.len(), 6);
        let sub = markup_decode(&matches[0].events).unwrap();
        assert_eq!(sub.display(&g), "a{b{}c{}}");
        assert_eq!(matches[1].node, 5);
        assert_eq!(matches[1].events.len(), 2); // a{}
    }

    #[test]
    fn nested_matches_fold_into_the_outermost() {
        let g = Alphabet::of_chars("ab");
        // Select every a: nested a's are inside the outermost a's span.
        let analysis = Analysis::new(&compile_regex(".*a", &g).unwrap());
        let program = har::compile_query_markup(&analysis).unwrap();
        let (_, t) = {
            let events: Vec<_> = st_trees::json::TermScanner::new(b"b{a{a{a{}}}}", &g)
                .map(|e| e.unwrap())
                .collect();
            ((), st_trees::encode::term_decode(&events).unwrap())
        };
        let tags = markup_encode(&t);
        let matches = extract_subtrees(&program, &tags).unwrap();
        assert_eq!(matches.len(), 1);
        let sub = markup_decode(&matches[0].events).unwrap();
        assert_eq!(sub.display(&g), "a{a{a{}}}");
    }

    #[test]
    fn spans_are_well_formed_and_cover_selection() {
        let g = Alphabet::of_chars("abc");
        let analysis = Analysis::new(&compile_regex(".*a.*b", &g).unwrap());
        let program = har::compile_query_markup(&analysis).unwrap();
        for seed in 0..20 {
            let t = generate::random_attachment(&g, 80, 0.5, seed);
            let tags = markup_encode(&t);
            let matches = extract_subtrees(&program, &tags).unwrap();
            let selected: Vec<usize> = oracle::select(&t, &analysis.dfa)
                .into_iter()
                .map(|v| v.index())
                .collect();
            // Every match is a selected node and decodes to a tree.
            for m in &matches {
                assert!(selected.contains(&m.node), "seed {seed}");
                let sub = markup_decode(&m.events).unwrap();
                assert_eq!(sub.len() * 2, m.events.len());
            }
            // Matches are exactly the outermost selected nodes.
            let outermost: Vec<usize> = selected
                .iter()
                .copied()
                .filter(|&v| {
                    let mut cur = t.parent(st_trees::tree::NodeId(v as u32));
                    while let Some(u) = cur {
                        if selected.contains(&u.index()) {
                            return false;
                        }
                        cur = t.parent(u);
                    }
                    true
                })
                .collect();
            assert_eq!(
                matches.iter().map(|m| m.node).collect::<Vec<_>>(),
                outermost,
                "seed {seed}"
            );
        }
    }
}
