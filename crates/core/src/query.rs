//! The front-door query API: compile a path pattern once, let the
//! planner pick the cheapest streaming engine, and evaluate documents
//! through one coherent handle.
//!
//! Before this module, callers assembled the pipeline by hand —
//! `compile_regex` → [`CompiledQuery::compile`] → [`CompiledQuery::fused`]
//! — and reached into `FusedQuery::{registerless,stackless,stack}` when
//! they wanted a specific backend.  [`Query`] folds those steps into one
//! constructor and carries both artifacts: the event-level plan (for
//! buffered tag streams) and the fused byte engine (for raw document
//! bytes, sessions, and checkpoints).
//!
//! ```
//! use st_core::prelude::*;
//! use st_automata::Alphabet;
//!
//! let gamma = Alphabet::of_chars("ab");
//! let query = Query::compile(".*a", &gamma).unwrap();
//! assert_eq!(query.strategy(), Strategy::Registerless);
//! let n = query.count(b"<a><b></b></a>").unwrap();
//! assert_eq!(n, 1);
//! ```

use st_automata::{compile_regex, Alphabet, AutomataError, Dfa};
use st_trees::error::TreeError;

use crate::engine::FusedQuery;
use crate::error::CoreError;
use crate::planner::{CompiledQuery, Strategy};
use crate::session::{
    EngineCheckpoint, EngineSession, Limits, RecoveryOutcome, SessionError, SessionOutcome,
};

/// Why a [`Query`] could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The path pattern did not parse as a regex over the alphabet.
    Pattern(AutomataError),
    /// The planner's chosen engine could not be fused with the byte
    /// lexer (e.g. the composite table exceeds its state budget).
    Engine(CoreError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Pattern(e) => write!(f, "bad pattern: {e}"),
            QueryError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<AutomataError> for QueryError {
    fn from(e: AutomataError) -> QueryError {
        QueryError::Pattern(e)
    }
}

impl From<CoreError> for QueryError {
    fn from(e: CoreError) -> QueryError {
        QueryError::Engine(e)
    }
}

/// A compiled path query: the planner-chosen evaluation strategy, the
/// event-level plan, and the fused byte engine, behind one handle.
///
/// Construct with [`Query::compile`] (a regex-style path pattern) or
/// [`Query::from_dfa`] (an already-built ancestor-string DFA, e.g. from
/// an XPath/JSONPath translator).  Evaluate with [`Query::count`] /
/// [`Query::select`] (one-shot over raw bytes), their `_limited`
/// variants (resource-guarded), or open a checkpointable streaming
/// [`Query::session`].
pub struct Query {
    alphabet: Alphabet,
    plan: CompiledQuery,
    fused: FusedQuery,
}

impl Query {
    /// Compiles `pattern` (a regex over the alphabet's symbols, matched
    /// against each node's ancestor string) and plans the cheapest
    /// engine for it.
    ///
    /// # Errors
    ///
    /// [`QueryError::Pattern`] if the pattern does not parse,
    /// [`QueryError::Engine`] if the chosen engine cannot be fused.
    pub fn compile(pattern: &str, alphabet: &Alphabet) -> Result<Query, QueryError> {
        let dfa = compile_regex(pattern, alphabet)?;
        Ok(Query::from_dfa(&dfa, alphabet)?)
    }

    /// Like [`Query::compile`], but consults (and on a miss, fills) the
    /// given [`crate::plancache::PlanCache`], so hot patterns skip
    /// determinization entirely.  Cached and fresh compiles are
    /// indistinguishable — compilation is deterministic, and the cache
    /// verifies the full `(pattern, alphabet)` key on every hit.
    ///
    /// # Errors
    ///
    /// As [`Query::compile`]; failures are never cached.
    pub fn compile_cached(
        pattern: &str,
        alphabet: &Alphabet,
        cache: &crate::plancache::PlanCache,
    ) -> Result<std::sync::Arc<Query>, QueryError> {
        cache.get_or_compile(pattern, alphabet)
    }

    /// Plans and fuses a query given directly as a DFA over the
    /// alphabet (ancestor-string semantics, as produced by
    /// `compile_regex` or the `st-rpq` translators).
    ///
    /// # Errors
    ///
    /// See [`CompiledQuery::fused`].
    pub fn from_dfa(dfa: &Dfa, alphabet: &Alphabet) -> Result<Query, CoreError> {
        let plan = CompiledQuery::compile(dfa);
        let fused = plan.fused(alphabet)?;
        Ok(Query {
            alphabet: alphabet.clone(),
            plan,
            fused,
        })
    }

    /// The strategy the planner chose (Registerless / Stackless /
    /// Stack).
    pub fn strategy(&self) -> Strategy {
        self.fused.strategy()
    }

    /// Forces (or re-enables) the scalar byte path for every evaluation
    /// through this query — the builder twin of the process-wide
    /// `ST_FORCE_SCALAR` escape hatch and of
    /// [`Limits::with_force_scalar`].  Results are bitwise identical
    /// either way; this exists as a kill switch and for differential
    /// testing.
    pub fn with_force_scalar(mut self, on: bool) -> Query {
        self.fused.set_force_scalar(on);
        self
    }

    /// The alphabet the query was compiled against.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The event-level plan, for callers that evaluate buffered tag
    /// streams ([`CompiledQuery::select`] / [`CompiledQuery::count`])
    /// or inspect the classification report.
    pub fn plan(&self) -> &CompiledQuery {
        &self.plan
    }

    /// The fused byte engine (for the data-parallel chunked entry
    /// points and the serving runtime, which shares engines via `Arc`).
    pub fn fused(&self) -> &FusedQuery {
        &self.fused
    }

    /// Consumes the query, keeping only the fused byte engine.
    pub fn into_fused(self) -> FusedQuery {
        self.fused
    }

    /// Streaming count of selected nodes over raw document bytes.
    ///
    /// # Errors
    ///
    /// The scanner's diagnostic if the document is malformed.
    pub fn count(&self, bytes: &[u8]) -> Result<usize, TreeError> {
        self.fused.count_bytes(bytes)
    }

    /// Document-order ids of selected nodes over raw document bytes.
    ///
    /// # Errors
    ///
    /// The scanner's diagnostic if the document is malformed.
    pub fn select(&self, bytes: &[u8]) -> Result<Vec<usize>, TreeError> {
        self.fused.select_bytes(bytes)
    }

    /// Resource-guarded count; see [`FusedQuery::count_bytes_limited`].
    ///
    /// # Errors
    ///
    /// [`SessionError::Parse`] or [`SessionError::Limit`].
    pub fn count_limited(&self, bytes: &[u8], limits: &Limits) -> Result<usize, SessionError> {
        self.fused.count_bytes_limited(bytes, limits)
    }

    /// Resource-guarded select; see [`FusedQuery::select_bytes_limited`].
    ///
    /// # Errors
    ///
    /// [`SessionError::Parse`] or [`SessionError::Limit`].
    pub fn select_limited(
        &self,
        bytes: &[u8],
        limits: &Limits,
    ) -> Result<Vec<usize>, SessionError> {
        self.fused.select_bytes_limited(bytes, limits)
    }

    /// Lenient evaluation with diagnostics; see
    /// [`FusedQuery::select_bytes_recovering_limited`].
    pub fn select_recovering(&self, bytes: &[u8], limits: &Limits) -> RecoveryOutcome {
        self.fused.select_bytes_recovering_limited(bytes, limits)
    }

    /// Opens a checkpointable streaming session under `limits`.
    pub fn session(&self, limits: Limits) -> EngineSession<'_> {
        self.fused.session(limits)
    }

    /// Reopens a session from a checkpoint minted by the same query.
    ///
    /// # Errors
    ///
    /// See [`FusedQuery::resume`].
    pub fn resume(
        &self,
        checkpoint: &EngineCheckpoint,
        limits: Limits,
    ) -> Result<EngineSession<'_>, SessionError> {
        self.fused.resume(checkpoint, limits)
    }

    /// Runs the whole document through a session in one call.
    ///
    /// # Errors
    ///
    /// As for [`EngineSession::feed`] / [`EngineSession::finish`].
    pub fn run_session(
        &self,
        bytes: &[u8],
        limits: &Limits,
    ) -> Result<SessionOutcome, SessionError> {
        self.fused.run_session(bytes, limits)
    }
}
