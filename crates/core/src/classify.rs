//! Decision procedures for the paper's syntactic classes.
//!
//! All four classes — and their *blind* variants for the term encoding —
//! are simple PTIME-testable properties of the minimal automaton
//! (Definitions 3.4, 3.6, 3.9; Appendix B):
//!
//! * **almost-reversible**: every two internal states that meet are almost
//!   equivalent ⟺ Q_L is registerless (Theorem 3.2 (3));
//! * **HAR** (hierarchically almost-reversible): every two states of one
//!   SCC that meet *inside* that SCC are almost equivalent ⟺ Q_L is
//!   stackless (Theorem 3.1);
//! * **E-flat**: for every internal `p` and rejective `q`, if `p` meets `q`
//!   in `q` then they are almost equivalent ⟺ EL is registerless
//!   (Theorem 3.2 (1));
//! * **A-flat**: dual with acceptive states ⟺ AL is registerless
//!   (Theorem 3.2 (2)).
//!
//! Failed checks come with witness state pairs, which the fooling-tree
//! generators in [`crate::fooling`] turn into concrete indistinguishable
//! documents.

use st_automata::dfa::State;
use st_automata::pairs::MeetMode;

use crate::analysis::Analysis;

/// Outcome of one class check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// Whether the language belongs to the class.
    pub holds: bool,
    /// When it does not: an offending pair of states of the minimal
    /// automaton (they meet as the definition requires but are not almost
    /// equivalent).
    pub witness: Option<(State, State)>,
}

impl Verdict {
    fn ok() -> Verdict {
        Verdict {
            holds: true,
            witness: None,
        }
    }

    fn fail(p: State, q: State) -> Verdict {
        Verdict {
            holds: false,
            witness: Some((p, q)),
        }
    }
}

/// Verdicts for all four classes under one meet mode (synchronous for the
/// markup encoding, blind for the term encoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassVerdicts {
    /// Almost-reversible (Definition 3.4) — Q_L registerless.
    pub almost_reversible: Verdict,
    /// Hierarchically almost-reversible (Definition 3.6) — Q_L stackless.
    pub har: Verdict,
    /// E-flat (Definition 3.9) — EL registerless.
    pub e_flat: Verdict,
    /// A-flat (Definition 3.9) — AL registerless.
    pub a_flat: Verdict,
}

/// Full classification of a path language: verdicts under both encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassReport {
    /// Markup-encoding classes (synchronous meets).
    pub markup: ClassVerdicts,
    /// Term-encoding classes (blind meets, Appendix B).
    pub term: ClassVerdicts,
}

impl ClassReport {
    /// Theorem 3.2 (3): Q_L realizable by a plain DFA over Γ ∪ Γ̄.
    pub fn query_registerless(&self) -> bool {
        self.markup.almost_reversible.holds
    }

    /// Theorem 3.1: Q_L realizable by a depth-register automaton.
    pub fn query_stackless(&self) -> bool {
        self.markup.har.holds
    }

    /// Theorem B.1 (3): Q_L realizable by a DFA over Γ ∪ {◁}.
    pub fn query_term_registerless(&self) -> bool {
        self.term.almost_reversible.holds
    }

    /// Theorem B.2: Q_L realizable by a DRA over the term encoding.
    pub fn query_term_stackless(&self) -> bool {
        self.term.har.holds
    }
}

/// Classifies the language of `analysis` under one meet mode.
pub fn classify_mode(analysis: &Analysis, mode: MeetMode) -> ClassVerdicts {
    ClassVerdicts {
        almost_reversible: check_almost_reversible(analysis, mode),
        har: check_har(analysis, mode),
        e_flat: check_e_flat(analysis, mode),
        a_flat: check_a_flat(analysis, mode),
    }
}

/// Classifies a path language given any DFA for it (minimized internally).
///
/// ```
/// use st_automata::{compile_regex, Alphabet};
/// use st_core::analysis::Analysis;
/// use st_core::classify::classify;
///
/// let gamma = Alphabet::of_chars("abc");
/// let analysis = Analysis::new(&compile_regex("a.*b", &gamma).unwrap());
/// let report = classify(&analysis);
/// assert!(report.query_registerless()); // a Γ*b is almost-reversible
/// assert!(report.query_stackless());
/// ```
pub fn classify(analysis: &Analysis) -> ClassReport {
    ClassReport {
        markup: classify_mode(analysis, MeetMode::Synchronous),
        term: classify_mode(analysis, MeetMode::Blind),
    }
}

/// Definition 3.4: every two *internal* states that meet are almost
/// equivalent.
pub fn check_almost_reversible(analysis: &Analysis, mode: MeetMode) -> Verdict {
    let n = analysis.n_states();
    for p in 0..n {
        if !analysis.internal[p] {
            continue;
        }
        for q in p + 1..n {
            if !analysis.internal[q] {
                continue;
            }
            if analysis.meets(mode, p, q) && !analysis.almost_equivalent(p, q) {
                return Verdict::fail(p, q);
            }
        }
    }
    Verdict::ok()
}

/// Definition 3.6: every two states of one SCC that meet inside that SCC
/// are almost equivalent.
///
/// (If `p, q ∈ X` and `p·u = q·u = r ∈ X`, every intermediate state of
/// either run lies in `X` as well — leaving an SCC is irreversible in a
/// DFA — so "meet inside X" is exactly "meet in some `r ∈ X`".)
pub fn check_har(analysis: &Analysis, mode: MeetMode) -> Verdict {
    for members in &analysis.scc.members {
        for (i, &p) in members.iter().enumerate() {
            for &q in &members[i + 1..] {
                let meet_inside = members.iter().any(|&r| analysis.meets_in(mode, p, q, r));
                if meet_inside && !analysis.almost_equivalent(p, q) {
                    return Verdict::fail(p, q);
                }
            }
        }
    }
    Verdict::ok()
}

/// Definition 3.9 (E-flat): for every internal `p` and rejective `q`, if
/// `p` meets `q` **in** `q` then they are almost equivalent.
pub fn check_e_flat(analysis: &Analysis, mode: MeetMode) -> Verdict {
    check_flat(analysis, mode, &analysis.rejective)
}

/// Definition 3.9 (A-flat): dual, with acceptive targets.
pub fn check_a_flat(analysis: &Analysis, mode: MeetMode) -> Verdict {
    check_flat(analysis, mode, &analysis.acceptive)
}

fn check_flat(analysis: &Analysis, mode: MeetMode, targets: &[bool]) -> Verdict {
    let n = analysis.n_states();
    for (q, &is_target) in targets.iter().enumerate() {
        if !is_target {
            continue;
        }
        for p in 0..n {
            if !analysis.internal[p] || p == q {
                continue;
            }
            if analysis.meets_in(mode, p, q, q) && !analysis.almost_equivalent(p, q) {
                return Verdict::fail(p, q);
            }
        }
    }
    Verdict::ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_automata::{compile_regex, Alphabet, Dfa};

    fn report(pattern: &str) -> ClassReport {
        let g = Alphabet::of_chars("abc");
        let d = compile_regex(pattern, &g).unwrap();
        classify(&Analysis::new(&d))
    }

    /// Example 2.12's table, the paper's own summary:
    ///
    /// | RPQ      | registerless | stackless |
    /// | a Γ*b    | ✓            | ✓         |
    /// | a b      | ✗            | ✓         |
    /// | Γ*a Γ*b  | ✗            | ✓         |
    /// | Γ*a b    | ✗            | ✗         |
    #[test]
    fn example_2_12_table() {
        let r1 = report("a.*b");
        assert!(r1.query_registerless());
        assert!(r1.query_stackless());

        let r2 = report("ab");
        assert!(!r2.query_registerless());
        assert!(r2.query_stackless());

        let r3 = report(".*a.*b");
        assert!(!r3.query_registerless());
        assert!(r3.query_stackless());

        let r4 = report(".*ab");
        assert!(!r4.query_registerless());
        assert!(!r4.query_stackless());
    }

    /// Section 4.2: the same four RPQs keep their verdicts under the term
    /// encoding.
    #[test]
    fn example_2_12_table_term_encoding() {
        assert!(report("a.*b").query_term_registerless());
        assert!(!report("ab").query_term_registerless());
        assert!(report("ab").query_term_stackless());
        assert!(!report(".*a.*b").query_term_registerless());
        assert!(report(".*a.*b").query_term_stackless());
        assert!(!report(".*ab").query_term_stackless());
    }

    /// Section 4.2: `(b*a b*a b*)*` (Fig. 2) is reversible — hence
    /// almost-reversible, hence registerless under the markup encoding —
    /// but **not even blindly HAR**, so not stackless under the term
    /// encoding.  "This is the cost of succinctness."
    #[test]
    fn fig2_markup_vs_term_gap() {
        let g = Alphabet::of_chars("ab");
        // The paper writes (b*a b*a b*)*; the automaton of Fig. 2 accepts
        // exactly the words with an even number of a's, i.e. (b*ab*a)*b*.
        let d = compile_regex("(b*ab*a)*b*", &g).unwrap();
        let r = classify(&Analysis::new(&d));
        assert!(r.query_registerless());
        assert!(r.query_stackless());
        assert!(!r.query_term_stackless());
        assert!(!r.query_term_registerless());
    }

    /// Theorem 3.2 / Lemma 3.10: almost-reversible ⟺ E-flat ∧ A-flat, and
    /// HAR is implied by almost-reversible — spot-checked on the table
    /// languages.
    #[test]
    fn class_inclusions_on_samples() {
        for pattern in ["a.*b", "ab", ".*a.*b", ".*ab", "a*", ".*", "[^abc]"] {
            let r = report(pattern);
            let m = r.markup;
            assert_eq!(
                m.almost_reversible.holds,
                m.e_flat.holds && m.a_flat.holds,
                "Lemma 3.10 fails on {pattern}"
            );
            if m.almost_reversible.holds {
                assert!(m.har.holds, "AR ⊆ HAR fails on {pattern}");
            }
        }
    }

    /// R-trivial languages (all SCCs trivial) are HAR: `ab` and `abc` are
    /// finite hence R-trivial.
    #[test]
    fn finite_languages_are_har_and_a_flat() {
        for pattern in ["ab", "abc", "a|bc"] {
            let r = report(pattern);
            assert!(r.markup.har.holds, "{pattern}");
            assert!(r.markup.a_flat.holds, "{pattern}");
        }
    }

    /// Co-finite languages are E-flat (Section 3.3).
    #[test]
    fn cofinite_languages_are_e_flat() {
        let g = Alphabet::of_chars("abc");
        for pattern in ["ab", "abc"] {
            let d = compile_regex(pattern, &g).unwrap().complement();
            let r = classify(&Analysis::new(&d));
            assert!(r.markup.e_flat.holds, "complement of {pattern}");
        }
    }

    /// Witnesses are real: the failed pair must meet and not be almost
    /// equivalent.
    #[test]
    fn witnesses_are_sound() {
        let g = Alphabet::of_chars("abc");
        let d = compile_regex(".*ab", &g).unwrap();
        let analysis = Analysis::new(&d);
        let v = check_har(&analysis, MeetMode::Synchronous);
        assert!(!v.holds);
        let (p, q) = v.witness.unwrap();
        assert!(analysis.scc.same_component(p, q));
        assert!(!analysis.almost_equivalent(p, q));
    }

    /// Lemma 3.10 (1): L is A-flat iff Lᶜ is E-flat — on random DFAs.
    #[test]
    fn flatness_duality_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let n = rng.gen_range(1..=4);
            let k = 2;
            let rows: Vec<Vec<usize>> = (0..n)
                .map(|_| (0..k).map(|_| rng.gen_range(0..n)).collect())
                .collect();
            let accepting: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let d = Dfa::from_rows(k, 0, accepting, rows).unwrap();
            let a = Analysis::new(&d);
            let ac = Analysis::new(&d.complement());
            let va = classify_mode(&a, MeetMode::Synchronous);
            let vc = classify_mode(&ac, MeetMode::Synchronous);
            assert_eq!(va.a_flat.holds, vc.e_flat.holds);
            assert_eq!(va.e_flat.holds, vc.a_flat.holds);
            // Lemma 3.10 (2).
            assert_eq!(
                va.almost_reversible.holds,
                va.a_flat.holds && va.e_flat.holds
            );
            // Lemma 3.7: HAR closed under complement.
            assert_eq!(va.har.holds, vc.har.holds);
        }
    }
}
