//! Lemma 3.5: compiling almost-reversible RPQs to plain finite automata.
//!
//! If L is almost-reversible, its query Q_L can be realized by a DFA B over
//! Γ ∪ Γ̄: on opening tags B follows the minimal automaton A of L; on a
//! closing tag ā in state p it *rewinds* to the minimal internal state p′
//! with `p′ · a` almost equivalent to p (falling to a rejecting sink ⊥ when
//! no such state exists — which never happens on valid encodings).
//!
//! The module also provides the Theorem 3.1/3.2 derivations that turn any
//! node-selecting automaton over tags into acceptors of the boolean tree
//! languages EL ("some branch in L") and AL ("all branches in L"), and the
//! blind variant of the compiler for the term encoding (Theorem B.1; the
//! rewind target ignores the closing label, which is exactly what blind
//! almost-reversibility licenses).

use st_automata::dfa::{Dfa, State};
use st_automata::pairs::MeetMode;

use crate::analysis::Analysis;
use crate::classify::check_almost_reversible;
use crate::error::CoreError;

/// Compiles Q_L to a DFA over the **markup** tag alphabet (letters
/// `0..k` = opening tags, `k..2k` = closing tags for `|Γ| = k`).
///
/// Pre-selection semantics: a node is selected iff the automaton is in an
/// accepting state right after its opening tag.
///
/// # Errors
///
/// [`CoreError::ClassMismatch`] if L is not almost-reversible — by
/// Theorem 3.2 no finite automaton realizes Q_L then.
pub fn compile_query_markup(analysis: &Analysis) -> Result<Dfa, CoreError> {
    let verdict = check_almost_reversible(analysis, MeetMode::Synchronous);
    if !verdict.holds {
        return Err(CoreError::ClassMismatch {
            required: "almost-reversible",
            witness: verdict.witness,
        });
    }
    Ok(build_rewinder(analysis, RewindMode::Markup))
}

/// Compiles Q_L to a DFA over the **term** alphabet (letters `0..k` =
/// opening tags, `k` = the universal closing tag ◁), per Theorem B.1.
///
/// # Errors
///
/// [`CoreError::ClassMismatch`] if L is not *blindly* almost-reversible.
pub fn compile_query_term(analysis: &Analysis) -> Result<Dfa, CoreError> {
    let verdict = check_almost_reversible(analysis, MeetMode::Blind);
    if !verdict.holds {
        return Err(CoreError::ClassMismatch {
            required: "blindly almost-reversible",
            witness: verdict.witness,
        });
    }
    Ok(build_rewinder(analysis, RewindMode::Term))
}

enum RewindMode {
    Markup,
    Term,
}

/// The Lemma 3.5 construction.  States `0..m` mirror A; state `m` is ⊥.
fn build_rewinder(analysis: &Analysis, mode: RewindMode) -> Dfa {
    let a = &analysis.dfa;
    let k = a.n_letters();
    let m = a.n_states();
    let bottom = m;
    let n_letters = match mode {
        RewindMode::Markup => 2 * k,
        RewindMode::Term => k + 1,
    };

    // The minimal internal p′ with p′ · a almost equivalent to p; for the
    // term encoding (blind), any letter may witness the rewind — blind
    // almost-reversibility makes the choice irrelevant (Theorem B.1).
    let rewind_target = |p: State, letter: Option<usize>| -> Option<State> {
        (0..m)
            .filter(|&p2| analysis.internal[p2])
            .find(|&p2| match letter {
                Some(a_letter) => analysis.almost_equivalent(a.step(p2, a_letter), p),
                None => (0..k).any(|any| analysis.almost_equivalent(a.step(p2, any), p)),
            })
    };

    let mut rows: Vec<Vec<State>> = Vec::with_capacity(m + 1);
    for p in 0..m {
        let mut row = Vec::with_capacity(n_letters);
        // Opening letters: follow A.
        for letter in 0..k {
            row.push(a.step(p, letter));
        }
        // Closing letters: rewind.
        match mode {
            RewindMode::Markup => {
                for letter in 0..k {
                    row.push(rewind_target(p, Some(letter)).unwrap_or(bottom));
                }
            }
            RewindMode::Term => {
                row.push(rewind_target(p, None).unwrap_or(bottom));
            }
        }
        rows.push(row);
    }
    rows.push(vec![bottom; n_letters]); // ⊥ is a sink.

    let mut accepting: Vec<bool> = (0..m).map(|s| a.is_accepting(s)).collect();
    accepting.push(false);
    Dfa::from_rows(n_letters, a.init(), accepting, rows)
        .expect("rewinder construction is well-formed")
}

/// Theorem 3.1 "(1) ⇒ (2)": turns a node-selecting DFA into an acceptor of
/// EL.  `is_open(letter)` tells which letters of the automaton's alphabet
/// are opening tags.
///
/// States are pairs (inner state, "previous letter opened a node that was
/// selected") plus an all-accepting sink ⊤ entered when a selected node
/// turns out to be a leaf.
pub fn exists_acceptor(query: &Dfa, is_open: impl Fn(usize) -> bool) -> Dfa {
    derive_acceptor(query, is_open, true)
}

/// Theorem 3.2 dual: acceptor of AL.  Enters an all-rejecting sink ⊥ when
/// an *unselected* node turns out to be a leaf.
pub fn forall_acceptor(query: &Dfa, is_open: impl Fn(usize) -> bool) -> Dfa {
    derive_acceptor(query, is_open, false)
}

fn derive_acceptor(query: &Dfa, is_open: impl Fn(usize) -> bool, exists: bool) -> Dfa {
    let k = query.n_letters();
    let m = query.n_states();
    // State encoding: 2*s + flag for live states; 2*m = sink.
    let sink = 2 * m;
    let mut rows: Vec<Vec<State>> = Vec::with_capacity(sink + 1);
    for s in 0..m {
        for flag in 0..2usize {
            let mut row = Vec::with_capacity(k);
            for letter in 0..k {
                if !is_open(letter) && flag == 1 {
                    row.push(sink);
                    continue;
                }
                let next = query.step(s, letter);
                // Flag: letter opens a node whose selection status matches
                // the polarity we are watching for.
                let selected = query.is_accepting(next);
                let watch = if exists { selected } else { !selected };
                let next_flag = usize::from(is_open(letter) && watch);
                row.push(2 * next + next_flag);
            }
            rows.push(row);
        }
    }
    rows.push(vec![sink; k]);

    let mut accepting = vec![!exists; sink];
    accepting.push(exists);
    let init = 2 * query.init();
    Dfa::from_rows(k, init, accepting, rows).expect("acceptor construction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{preselect, TagDfaProgram, TermDfaProgram};
    use st_automata::{compile_regex, Alphabet};
    use st_trees::encode::{markup_encode, term_encode};
    use st_trees::{generate, oracle};

    fn analysis(pattern: &str, sigma: &str) -> Analysis {
        let g = Alphabet::of_chars(sigma);
        Analysis::new(&compile_regex(pattern, &g).unwrap())
    }

    #[test]
    fn rejects_non_ar_languages() {
        let a = analysis("ab", "abc");
        assert!(matches!(
            compile_query_markup(&a),
            Err(CoreError::ClassMismatch { .. })
        ));
    }

    #[test]
    fn a_gamma_star_b_realized_correctly() {
        // Example 2.12 first column: a Γ*b is registerless.
        let g = Alphabet::of_chars("abc");
        let a = analysis("a.*b", "abc");
        let q = compile_query_markup(&a).unwrap();
        let program = TagDfaProgram::new(&q);
        for seed in 0..20 {
            let t = generate::random_attachment(&g, 150, 0.55, seed);
            let tags = markup_encode(&t);
            let got = preselect(&program, &tags).unwrap();
            let want: Vec<usize> = oracle::select(&t, &a.dfa)
                .into_iter()
                .map(|v| v.index())
                .collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn reversible_language_markup() {
        // Fig. 2's language (even number of a's) is reversible, hence AR.
        let g = Alphabet::of_chars("ab");
        let a = analysis("(b*ab*a)*b*", "ab");
        let q = compile_query_markup(&a).unwrap();
        let program = TagDfaProgram::new(&q);
        for seed in 0..20 {
            let t = generate::random_attachment(&g, 120, 0.6, 1000 + seed);
            let tags = markup_encode(&t);
            let got = preselect(&program, &tags).unwrap();
            let want: Vec<usize> = oracle::select(&t, &a.dfa)
                .into_iter()
                .map(|v| v.index())
                .collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn term_encoding_compiler() {
        // a Γ*b is blindly almost-reversible too (its merges all happen
        // into sinks, label-independently).
        let g = Alphabet::of_chars("abc");
        let a = analysis("a.*b", "abc");
        let q = compile_query_term(&a).unwrap();
        let program = TermDfaProgram::new(&q);
        for seed in 0..20 {
            let t = generate::random_attachment(&g, 150, 0.55, 500 + seed);
            let events = term_encode(&t);
            let got = preselect(&program, &events).unwrap();
            let want: Vec<usize> = oracle::select(&t, &a.dfa)
                .into_iter()
                .map(|v| v.index())
                .collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn term_compiler_rejects_markup_only_languages() {
        // Fig. 2's language is AR but not blindly AR (Section 4.2).
        let a = analysis("(b*ab*a)*b*", "ab");
        assert!(compile_query_markup(&a).is_ok());
        assert!(matches!(
            compile_query_term(&a),
            Err(CoreError::ClassMismatch { .. })
        ));
    }

    #[test]
    fn exists_and_forall_acceptors() {
        let g = Alphabet::of_chars("abc");
        let a = analysis("a.*b", "abc");
        let q = compile_query_markup(&a).unwrap();
        let k = a.dfa.n_letters();
        let el = exists_acceptor(&q, |l| l < k);
        let al = forall_acceptor(&q, |l| l < k);
        let el_prog = TagDfaProgram::new(&el);
        let al_prog = TagDfaProgram::new(&al);
        for seed in 0..30 {
            let t = generate::random_attachment(&g, 60, 0.5, 42 + seed);
            let tags = markup_encode(&t);
            assert_eq!(
                crate::model::accepts(&el_prog, &tags).unwrap(),
                oracle::in_exists(&t, &a.dfa),
                "EL seed {seed}"
            );
            assert_eq!(
                crate::model::accepts(&al_prog, &tags).unwrap(),
                oracle::in_forall(&t, &a.dfa),
                "AL seed {seed}"
            );
        }
    }
}
