//! Shared multi-query evaluation: one byte pass, N queries.
//!
//! A serving edge runs thousands of distinct queries over the same hot
//! documents; answering them one scan at a time re-pays the dominant
//! cost — tokenizing the bytes — once per query.  [`QuerySet`] compiles
//! a whole set of path queries into a single machine that is driven by
//! *one* pass over the document (the same SIMD structural index the
//! single-query engines use) and attributes every match back to the
//! member query that selected it.
//!
//! # The three tiers
//!
//! The set compiler picks the cheapest exact evaluation scheme:
//!
//! * **Product** — when every member is almost-reversible (the planner
//!   chose its Lemma 3.5 registerless markup DFA), the member DFAs are
//!   combined into one synchronous product over *compressed letter
//!   classes* (letters indistinguishable to the whole family share a
//!   transition column, [`st_automata::ops::letter_classes`]).  Each
//!   product state carries a per-query accepting bitmask, so an open
//!   event costs one table step plus one mask test for all N queries.
//!   The product is only kept while it stays under a configurable
//!   state budget ([`QuerySet::compile_with_budget`]).
//! * **Lanes** — all members almost-reversible but the product blows
//!   the budget: the member markup DFAs run as N one-hot lanes of a
//!   union-NFA simulation (each lane is deterministic, so the "set of
//!   live states" is exactly one state per lane).  Attribution flows
//!   through per-query accepting masks assembled in 64-query words.
//! * **Hybrid** — the set contains a member the planner would not run
//!   registerless: every member keeps its *native* event-level engine
//!   (markup DFA, HAR depth-register run, or DFA + explicit stack) and
//!   all of them step in lockstep off the shared event stream.  This
//!   is bitwise identical to N independent runs by construction — the
//!   per-event logic is the same as each member's own session backend.
//!
//! All three tiers share the byte pass: the indexed two-pass structural
//! scan when available, the scalar lexer twin under `ST_FORCE_SCALAR`
//! or [`Limits::force_scalar`].
//!
//! # Sessions
//!
//! [`QuerySetSession`] mirrors [`crate::session::EngineSession`]:
//! windowed feeds under [`Limits`], checkpoint/resume at any byte
//! boundary with a versioned wire format ([`QuerySetCheckpoint`],
//! magic `STQS`), and resume ≡ whole-run at every cut.

use st_automata::ops::{letter_classes, product_many, MultiProduct};
use st_automata::{compile_regex, Alphabet, Dfa};
use st_obs::TraceEvent;
use st_trees::error::TreeError;

use crate::engine::{find_lt, rescan_error, TagLexer, EV_ERROR, EV_NONE, TEXT};
use crate::har::{HarMarkupProgram, MAX_CHAIN};
use crate::planner::{CompiledQuery, Strategy};
use crate::query::QueryError;
use crate::session::{
    alphabet_symbols, corrupt, decode_event, depth_error, fnv_bytes, fnv_dfa, fnv_usize,
    imbalance_error, limit_kind_name, parse_error, put_i64, put_u16, put_u32, put_u64, HarRun,
    LimitExceeded, LimitKind, Limits, Reader, SessObs, SessionError, WINDOW,
};
use crate::structural::{structural_scan, EventSink, ScanEnd, ScanStats};

/// Default cap on the shared product DFA's state count.  Past this the
/// compiler falls back to lane-wise simulation; `0` disables the
/// product tier entirely (useful for forcing the lanes path in
/// differential tests).
pub const DEFAULT_PRODUCT_BUDGET: usize = 4096;

/// Version tag of the [`QuerySetCheckpoint`] wire format.
pub const QUERYSET_CHECKPOINT_VERSION: u16 = 1;

const QS_MAGIC: [u8; 4] = *b"STQS";

const TAG_PRODUCT: u8 = 0;
const TAG_LANES: u8 = 1;
const TAG_HYBRID: u8 = 2;

const LANE_MARKUP: u8 = 0;
const LANE_HAR: u8 = 1;
const LANE_STACK: u8 = 2;

// ---------------------------------------------------------------------------
// Compiled tables
// ---------------------------------------------------------------------------

/// The compressed-alphabet product DFA with per-state accepting masks.
struct ProductTable {
    /// Number of letter classes (compressed alphabet size).
    n_classes: usize,
    /// Product state count (≤ the budget).
    n_states: usize,
    /// `u64` words per accepting mask (`ceil(n_members / 64)`).
    words: usize,
    /// Initial product state.
    init: u32,
    /// Markup letter (`0..2k`) → class id.
    class_of: Vec<u16>,
    /// Row-major transitions over classes: `delta[s * n_classes + c]`.
    delta: Vec<u32>,
    /// Per-state accepting masks: `accept[s * words .. (s+1) * words]`,
    /// bit `q` set iff member `q`'s markup DFA accepts in state `s`.
    accept: Vec<u64>,
}

/// A family of member DFAs flattened into one global state space: member
/// `i`'s states occupy the block `starts[i]..starts[i+1]` and transition
/// rows are stored at their global ids, so stepping lane `i` is one load
/// from a shared table.
struct FamilyTable {
    /// Letters per member DFA (2k for markup DFAs).
    n_letters: usize,
    /// Global initial state per member.
    init: Vec<u32>,
    /// Block boundaries, `len == n_members + 1`.
    starts: Vec<u32>,
    /// Global row-major transitions: `delta[s * n_letters + a]`.
    delta: Vec<u32>,
    /// Accepting bitset over global states.
    accepting: Vec<u64>,
}

impl FamilyTable {
    fn build(dfas: &[&Dfa]) -> FamilyTable {
        let n_letters = dfas.first().map_or(0, |d| d.n_letters());
        let mut starts = Vec::with_capacity(dfas.len() + 1);
        let mut total = 0usize;
        for d in dfas {
            starts.push(u32::try_from(total).expect("family state space fits u32"));
            total += d.n_states();
        }
        starts.push(u32::try_from(total).expect("family state space fits u32"));
        let mut delta = Vec::with_capacity(total * n_letters);
        let mut accepting = vec![0u64; total.div_ceil(64)];
        for (i, d) in dfas.iter().enumerate() {
            let base = starts[i] as usize;
            for s in 0..d.n_states() {
                for a in 0..n_letters {
                    delta.push((base + d.step(s, a)) as u32);
                }
                if d.is_accepting(s) {
                    accepting[(base + s) >> 6] |= 1 << ((base + s) & 63);
                }
            }
        }
        let init = dfas
            .iter()
            .enumerate()
            .map(|(i, d)| starts[i] + d.init() as u32)
            .collect();
        FamilyTable {
            n_letters,
            init,
            starts,
            delta,
            accepting,
        }
    }

    #[inline]
    fn accepts(&self, s: u32) -> bool {
        (self.accepting[s as usize >> 6] >> (s as usize & 63)) & 1 != 0
    }

    fn n_members(&self) -> usize {
        self.init.len()
    }

    fn in_block(&self, i: usize, s: u32) -> bool {
        self.starts[i] <= s && s < self.starts[i + 1]
    }
}

/// One member's native event-level engine in the hybrid tier.
enum LaneEngine {
    /// Registerless member: its Lemma 3.5 markup DFA (closes are real
    /// transitions).
    Markup(Dfa),
    /// Stackless member: its Lemma 3.8 HAR markup program.
    Har(HarMarkupProgram),
    /// General member: minimal DFA over Γ plus an explicit stack.
    Stack(Dfa),
}

/// One member's live state in the hybrid tier.
enum LaneState {
    Markup { s: u32 },
    Har { run: HarRun },
    Stack { s: u32, frames: Vec<u32> },
}

fn fresh_lane(engine: &LaneEngine) -> LaneState {
    match engine {
        LaneEngine::Markup(dfa) => LaneState::Markup {
            s: dfa.init() as u32,
        },
        LaneEngine::Har(program) => LaneState::Har {
            run: HarRun {
                current: program.core().dfa().init(),
                dead: false,
                chain: [0; MAX_CHAIN],
                regs: [0; MAX_CHAIN],
                chain_len: 0,
            },
        },
        LaneEngine::Stack(dfa) => LaneState::Stack {
            s: dfa.init() as u32,
            frames: Vec::new(),
        },
    }
}

/// Applies an open event to one hybrid lane; `depth` is the depth
/// *after* the open.  Returns whether the member selects the node.
#[inline]
fn lane_open(engine: &LaneEngine, state: &mut LaneState, l: usize, depth: i64) -> bool {
    match (engine, state) {
        (LaneEngine::Markup(dfa), LaneState::Markup { s }) => {
            *s = dfa.step(*s as usize, l) as u32;
            dfa.is_accepting(*s as usize)
        }
        (LaneEngine::Har(program), LaneState::Har { run }) => run.open(program.core(), l, depth),
        (LaneEngine::Stack(dfa), LaneState::Stack { s, frames }) => {
            frames.push(*s);
            *s = dfa.step(*s as usize, l) as u32;
            dfa.is_accepting(*s as usize)
        }
        _ => unreachable!("lane engine/state agree by construction"),
    }
}

/// Applies a close event to one hybrid lane; `depth` is the depth
/// *after* the close, `k` the label-alphabet size.
#[inline]
fn lane_close(engine: &LaneEngine, state: &mut LaneState, k: usize, l: usize, depth: i64) {
    match (engine, state) {
        (LaneEngine::Markup(dfa), LaneState::Markup { s }) => {
            *s = dfa.step(*s as usize, k + l) as u32;
        }
        (LaneEngine::Har(program), LaneState::Har { run }) => run.close(program.core(), l, depth),
        (LaneEngine::Stack(_), LaneState::Stack { frames, s }) => {
            // Underflowing pop keeps the state, like the baseline
            // evaluator and the single-query stack session.
            if let Some(p) = frames.pop() {
                *s = p;
            }
        }
        _ => unreachable!("lane engine/state agree by construction"),
    }
}

enum SetBackend {
    Product(ProductTable),
    Lanes(FamilyTable),
    Hybrid(Vec<LaneEngine>),
}

/// Which evaluation tier the set compiler picked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetStrategy {
    /// One shared product DFA over compressed letter classes, with
    /// per-state accepting masks (all members almost-reversible, product
    /// within the state budget).
    Product,
    /// Bitset union-NFA simulation: one deterministic markup-DFA lane
    /// per member, per-query accepting masks (all members
    /// almost-reversible, product over budget).
    Lanes,
    /// Per-member native engines (markup DFA / HAR run / DFA + stack)
    /// stepping in lockstep off the shared event stream (at least one
    /// member is not almost-reversible).
    Hybrid,
}

// ---------------------------------------------------------------------------
// Members
// ---------------------------------------------------------------------------

struct SetMember {
    pattern: Option<String>,
    strategy: Strategy,
    /// The planner's minimal DFA over Γ (fingerprint + re-planning).
    dfa: Dfa,
}

// ---------------------------------------------------------------------------
// QuerySet
// ---------------------------------------------------------------------------

/// A compiled set of path queries evaluated together in one byte pass.
///
/// ```
/// use st_automata::Alphabet;
/// use st_core::queryset::QuerySet;
///
/// let gamma = Alphabet::of_chars("ab");
/// let set = QuerySet::compile(&["a.*", ".*b"], &gamma).unwrap();
/// let counts = set.count_all(b"<a><b></b></a>").unwrap();
/// assert_eq!(counts, vec![2, 1]);
/// ```
pub struct QuerySet {
    alphabet: Alphabet,
    lexer: TagLexer,
    members: Vec<SetMember>,
    backend: SetBackend,
    /// Whether the product tier used letter-class compression (affects
    /// product state numbering, hence the checkpoint fingerprint).
    compressed: bool,
    fingerprint: u64,
}

impl QuerySet {
    /// Compiles a set of path patterns over one alphabet with the
    /// [`DEFAULT_PRODUCT_BUDGET`].
    ///
    /// # Errors
    ///
    /// [`QueryError::Pattern`] if any pattern fails to parse.
    pub fn compile<S: AsRef<str>>(
        patterns: &[S],
        alphabet: &Alphabet,
    ) -> Result<QuerySet, QueryError> {
        Self::compile_with_budget(patterns, alphabet, DEFAULT_PRODUCT_BUDGET)
    }

    /// Compiles a set of path patterns with an explicit product-DFA
    /// state budget.  `budget == 0` disables the product tier (all-AR
    /// sets then take the lanes path — the knob differential tests use
    /// to force it).
    ///
    /// # Errors
    ///
    /// [`QueryError::Pattern`] if any pattern fails to parse.
    pub fn compile_with_budget<S: AsRef<str>>(
        patterns: &[S],
        alphabet: &Alphabet,
        budget: usize,
    ) -> Result<QuerySet, QueryError> {
        let mut dfas = Vec::with_capacity(patterns.len());
        for p in patterns {
            dfas.push(compile_regex(p.as_ref(), alphabet).map_err(QueryError::Pattern)?);
        }
        let names = patterns
            .iter()
            .map(|p| Some(p.as_ref().to_owned()))
            .collect();
        Ok(Self::build(dfas, names, alphabet, budget, true))
    }

    /// Compiles a set from pre-built query DFAs over `alphabet` with the
    /// [`DEFAULT_PRODUCT_BUDGET`].
    ///
    /// # Panics
    ///
    /// Panics if any DFA's alphabet size differs from `alphabet`.
    pub fn from_dfas(dfas: Vec<Dfa>, alphabet: &Alphabet) -> QuerySet {
        Self::from_dfas_with_budget(dfas, alphabet, DEFAULT_PRODUCT_BUDGET)
    }

    /// Compiles a set from pre-built query DFAs with an explicit product
    /// state budget (see [`Self::compile_with_budget`]).
    ///
    /// # Panics
    ///
    /// Panics if any DFA's alphabet size differs from `alphabet`.
    pub fn from_dfas_with_budget(dfas: Vec<Dfa>, alphabet: &Alphabet, budget: usize) -> QuerySet {
        let names = vec![None; dfas.len()];
        Self::build(dfas, names, alphabet, budget, true)
    }

    /// Like [`Self::compile_with_budget`] but with letter-class
    /// compression disabled in the product tier, so the product runs
    /// over the raw 2k-letter markup alphabet.  Exists for the property
    /// tests that check compression preserves per-query semantics.
    ///
    /// # Errors
    ///
    /// [`QueryError::Pattern`] if any pattern fails to parse.
    #[doc(hidden)]
    pub fn compile_uncompressed<S: AsRef<str>>(
        patterns: &[S],
        alphabet: &Alphabet,
        budget: usize,
    ) -> Result<QuerySet, QueryError> {
        let mut dfas = Vec::with_capacity(patterns.len());
        for p in patterns {
            dfas.push(compile_regex(p.as_ref(), alphabet).map_err(QueryError::Pattern)?);
        }
        let names = patterns
            .iter()
            .map(|p| Some(p.as_ref().to_owned()))
            .collect();
        Ok(Self::build(dfas, names, alphabet, budget, false))
    }

    fn build(
        dfas: Vec<Dfa>,
        patterns: Vec<Option<String>>,
        alphabet: &Alphabet,
        budget: usize,
        compress: bool,
    ) -> QuerySet {
        let k = alphabet.len();
        for d in &dfas {
            assert_eq!(d.n_letters(), k, "query-set DFA over a different alphabet");
        }
        let lexer = TagLexer::new(alphabet);
        let mut members = Vec::with_capacity(dfas.len());
        let mut plans = Vec::with_capacity(dfas.len());
        for (d, pattern) in dfas.iter().zip(patterns) {
            let plan = CompiledQuery::compile(d);
            members.push(SetMember {
                pattern,
                strategy: plan.strategy(),
                dfa: plan.minimal_dfa().clone(),
            });
            plans.push(plan);
        }
        let all_registerless = !plans.is_empty() && plans.iter().all(|p| p.markup_dfa().is_some());
        let backend = if all_registerless {
            let markups: Vec<&Dfa> = plans.iter().map(|p| p.markup_dfa().unwrap()).collect();
            let product = if budget == 0 {
                None
            } else {
                let (class_of, n_classes) = if compress {
                    letter_classes(&markups)
                } else {
                    ((0..2 * k).collect(), 2 * k)
                };
                product_many(&markups, &class_of, n_classes, budget)
                    .map(|mp| ProductTable::from_product(mp, &markups, &class_of))
            };
            match product {
                Some(table) => SetBackend::Product(table),
                None => SetBackend::Lanes(FamilyTable::build(&markups)),
            }
        } else if plans.is_empty() {
            SetBackend::Lanes(FamilyTable::build(&[]))
        } else {
            let engines = plans
                .iter()
                .map(|p| {
                    if let Some(m) = p.markup_dfa() {
                        LaneEngine::Markup(m.clone())
                    } else if let Some(h) = p.har_program() {
                        LaneEngine::Har(h.clone())
                    } else {
                        LaneEngine::Stack(p.minimal_dfa().clone())
                    }
                })
                .collect();
            SetBackend::Hybrid(engines)
        };
        let fingerprint = set_fingerprint(&members, backend_tag(&backend), compress, alphabet);
        QuerySet {
            alphabet: alphabet.clone(),
            lexer,
            members,
            backend,
            compressed: compress,
            fingerprint,
        }
    }

    /// Number of member queries.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set has no members (still a valid machine: it
    /// validates the document and reports no matches).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The alphabet the set was compiled over.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The evaluation tier the compiler picked.
    pub fn strategy(&self) -> SetStrategy {
        match &self.backend {
            SetBackend::Product(_) => SetStrategy::Product,
            SetBackend::Lanes(_) => SetStrategy::Lanes,
            SetBackend::Hybrid(_) => SetStrategy::Hybrid,
        }
    }

    /// The planner strategy of member `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn member_strategy(&self, i: usize) -> Strategy {
        self.members[i].strategy
    }

    /// The source pattern of member `i`, when the set was compiled from
    /// patterns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn member_pattern(&self, i: usize) -> Option<&str> {
        self.members[i].pattern.as_deref()
    }

    /// Product tier only: the shared DFA's state count.
    pub fn product_states(&self) -> Option<usize> {
        match &self.backend {
            SetBackend::Product(t) => Some(t.n_states),
            _ => None,
        }
    }

    /// Product tier only: the number of compressed letter classes (out
    /// of the raw `2k` markup letters).
    pub fn product_classes(&self) -> Option<usize> {
        match &self.backend {
            SetBackend::Product(t) => Some(t.n_classes),
            _ => None,
        }
    }

    /// Whether the product tier was built with letter-class compression
    /// (always true outside [`Self::compile_uncompressed`]).
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// Forces (or re-enables) the scalar byte path for this set's runs;
    /// the per-set twin of the process-wide `ST_FORCE_SCALAR` escape
    /// hatch.  Results are bitwise identical either way.
    pub fn set_force_scalar(&mut self, on: bool) {
        self.lexer.set_force_scalar(on);
    }

    /// Whether the scalar byte path is forced for this set.
    pub fn force_scalar(&self) -> bool {
        self.lexer.force_scalar()
    }

    // -- one-shot evaluation ------------------------------------------------

    /// Per-query match counts from one pass over raw document bytes.
    /// `counts[q]` equals `Query::compile(pattern_q).count(bytes)`.
    ///
    /// # Errors
    ///
    /// The same structural diagnostics as the single-query engines.
    pub fn count_all(&self, bytes: &[u8]) -> Result<Vec<usize>, TreeError> {
        self.count_all_stats(bytes).map(|(c, _)| c)
    }

    /// [`Self::count_all`] plus the structural-index window tallies of
    /// the pass.
    ///
    /// # Errors
    ///
    /// As for [`Self::count_all`].
    pub fn count_all_stats(&self, bytes: &[u8]) -> Result<(Vec<usize>, ScanStats), TreeError> {
        let mut emit = CountEmit {
            counts: vec![0; self.members.len()],
        };
        let mut stats = ScanStats::default();
        self.run_emit(bytes, &mut emit, &mut stats)?;
        Ok((emit.counts, stats))
    }

    /// Per-query selected node ids (document order) from one pass.
    /// `sel[q]` equals `Query::compile(pattern_q).select(bytes)`.
    ///
    /// # Errors
    ///
    /// As for [`Self::count_all`].
    pub fn select_all(&self, bytes: &[u8]) -> Result<Vec<Vec<usize>>, TreeError> {
        self.select_all_stats(bytes).map(|(s, _)| s)
    }

    /// [`Self::select_all`] plus the structural-index window tallies.
    ///
    /// # Errors
    ///
    /// As for [`Self::count_all`].
    pub fn select_all_stats(
        &self,
        bytes: &[u8],
    ) -> Result<(Vec<Vec<usize>>, ScanStats), TreeError> {
        let mut emit = SelectEmit {
            sel: vec![Vec::new(); self.members.len()],
        };
        let mut stats = ScanStats::default();
        self.run_emit(bytes, &mut emit, &mut stats)?;
        Ok((emit.sel, stats))
    }

    fn run_emit<E: Emit>(
        &self,
        bytes: &[u8],
        emit: &mut E,
        stats: &mut ScanStats,
    ) -> Result<(), TreeError> {
        let k = self.lexer.k();
        match &self.backend {
            SetBackend::Product(t) => {
                let mut sink = ProductSink {
                    k,
                    t,
                    s: t.init,
                    node: 0,
                    emit,
                };
                self.drive(bytes, &mut sink, stats)
            }
            SetBackend::Lanes(t) => {
                let mut sink = LaneSink {
                    k,
                    t,
                    cur: t.init.clone(),
                    buf: vec![0; t.n_members().div_ceil(64)],
                    node: 0,
                    emit,
                };
                self.drive(bytes, &mut sink, stats)
            }
            SetBackend::Hybrid(engines) => {
                let mut sink = HybridSink {
                    k,
                    engines,
                    lanes: engines.iter().map(fresh_lane).collect(),
                    buf: vec![0; engines.len().div_ceil(64)],
                    depth: 0,
                    node: 0,
                    emit,
                };
                self.drive(bytes, &mut sink, stats)
            }
        }
    }

    fn drive<S: EventSink>(
        &self,
        bytes: &[u8],
        sink: &mut S,
        stats: &mut ScanStats,
    ) -> Result<(), TreeError> {
        let mut lex = TEXT;
        match drive_window(
            &self.lexer,
            bytes,
            &mut lex,
            self.lexer.force_scalar(),
            stats,
            sink,
        ) {
            DriveEnd::Done if lex == TEXT => Ok(()),
            // Any failure re-scans cold for the exact single-query
            // diagnostic (same offset and message as `Query::count`).
            _ => Err(rescan_error(bytes, &self.alphabet)),
        }
    }
}

fn backend_tag(backend: &SetBackend) -> u8 {
    match backend {
        SetBackend::Product(_) => TAG_PRODUCT,
        SetBackend::Lanes(_) => TAG_LANES,
        SetBackend::Hybrid(_) => TAG_HYBRID,
    }
}

fn set_fingerprint(members: &[SetMember], tier: u8, compressed: bool, alphabet: &Alphabet) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    fnv_bytes(&mut h, &QS_MAGIC);
    fnv_usize(&mut h, tier as usize);
    fnv_usize(&mut h, compressed as usize);
    fnv_usize(&mut h, members.len());
    for sym in alphabet_symbols(alphabet) {
        fnv_bytes(&mut h, sym.as_bytes());
    }
    for m in members {
        fnv_dfa(&mut h, &m.dfa);
    }
    h
}

impl ProductTable {
    fn from_product(mp: MultiProduct, markups: &[&Dfa], class_of: &[usize]) -> ProductTable {
        let n_states = mp.tuples.len();
        let words = markups.len().div_ceil(64);
        let delta = mp
            .delta
            .iter()
            .map(|&d| u32::try_from(d).expect("product states fit u32"))
            .collect();
        let mut accept = vec![0u64; n_states * words];
        for (s, tuple) in mp.tuples.iter().enumerate() {
            for (i, (&st, d)) in tuple.iter().zip(markups).enumerate() {
                if d.is_accepting(st) {
                    accept[s * words + (i >> 6)] |= 1 << (i & 63);
                }
            }
        }
        ProductTable {
            n_classes: mp.n_classes,
            n_states,
            words,
            init: 0,
            class_of: class_of
                .iter()
                .map(|&c| u16::try_from(c).expect("letter classes fit u16"))
                .collect(),
            delta,
            accept,
        }
    }
}

// ---------------------------------------------------------------------------
// The shared byte pass
// ---------------------------------------------------------------------------

enum DriveEnd {
    /// Window consumed; the lexer state was written back.
    Done,
    /// Malformed input at this window-relative offset.
    Parse(usize),
    /// The sink stopped the scan (budget breach; the sink recorded why).
    Stopped,
}

/// Runs one window of bytes through either the indexed structural scan
/// or its scalar lexer twin, feeding events into `sink`.  `lex` is the
/// entry lexer state and receives the exit state.
fn drive_window<S: EventSink>(
    lexer: &TagLexer,
    w: &[u8],
    lex: &mut u16,
    force_scalar: bool,
    stats: &mut ScanStats,
    sink: &mut S,
) -> DriveEnd {
    if !force_scalar {
        return match structural_scan(lexer, w, *lex, stats, sink) {
            ScanEnd::Complete { lex: l2 } => {
                *lex = l2;
                DriveEnd::Done
            }
            ScanEnd::Error { pos } => DriveEnd::Parse(pos),
            ScanEnd::Stopped => DriveEnd::Stopped,
        };
    }
    let n = w.len();
    let mut l = *lex;
    let mut i = 0usize;
    while i < n {
        if l == TEXT {
            i = find_lt(w, i);
            if i >= n {
                break;
            }
        }
        let (l2, ev) = lexer.step(l, w[i]);
        l = l2;
        if ev != EV_NONE {
            if ev == EV_ERROR {
                *lex = l;
                return DriveEnd::Parse(i);
            }
            if !sink.event(ev, i) {
                *lex = l;
                return DriveEnd::Stopped;
            }
        }
        i += 1;
    }
    *lex = l;
    DriveEnd::Done
}

// ---------------------------------------------------------------------------
// One-shot sinks (monomorphized per tier × collector)
// ---------------------------------------------------------------------------

/// What a multi-query sink does with an attributed match: bit `q` of
/// `masks` set means member `q` selected node `node`.
trait Emit {
    fn hit(&mut self, masks: &[u64], node: usize);
}

struct CountEmit {
    counts: Vec<usize>,
}

impl Emit for CountEmit {
    #[inline]
    fn hit(&mut self, masks: &[u64], _node: usize) {
        for (w, &word0) in masks.iter().enumerate() {
            let mut word = word0;
            while word != 0 {
                self.counts[(w << 6) + word.trailing_zeros() as usize] += 1;
                word &= word - 1;
            }
        }
    }
}

struct SelectEmit {
    sel: Vec<Vec<usize>>,
}

impl Emit for SelectEmit {
    #[inline]
    fn hit(&mut self, masks: &[u64], node: usize) {
        for (w, &word0) in masks.iter().enumerate() {
            let mut word = word0;
            while word != 0 {
                self.sel[(w << 6) + word.trailing_zeros() as usize].push(node);
                word &= word - 1;
            }
        }
    }
}

struct ProductSink<'a, E: Emit> {
    k: usize,
    t: &'a ProductTable,
    s: u32,
    node: usize,
    emit: &'a mut E,
}

impl<E: Emit> EventSink for ProductSink<'_, E> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let t = self.t;
        let (open_l, close_l) = decode_event(ev, self.k);
        if let Some(l) = open_l {
            self.s = t.delta[self.s as usize * t.n_classes + t.class_of[l] as usize];
            let masks = &t.accept[self.s as usize * t.words..][..t.words];
            if masks.iter().any(|&w| w != 0) {
                self.emit.hit(masks, self.node);
            }
            self.node += 1;
        }
        if let Some(l) = close_l {
            self.s = t.delta[self.s as usize * t.n_classes + t.class_of[self.k + l] as usize];
        }
        true
    }
}

struct LaneSink<'a, E: Emit> {
    k: usize,
    t: &'a FamilyTable,
    cur: Vec<u32>,
    buf: Vec<u64>,
    node: usize,
    emit: &'a mut E,
}

impl<E: Emit> EventSink for LaneSink<'_, E> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let t = self.t;
        let nl = t.n_letters;
        let (open_l, close_l) = decode_event(ev, self.k);
        if let Some(l) = open_l {
            self.buf.fill(0);
            let mut any = 0u64;
            for (i, s) in self.cur.iter_mut().enumerate() {
                let ns = t.delta[*s as usize * nl + l];
                *s = ns;
                let bit = (t.accepting[ns as usize >> 6] >> (ns as usize & 63)) & 1;
                self.buf[i >> 6] |= bit << (i & 63);
                any |= bit;
            }
            if any != 0 {
                self.emit.hit(&self.buf, self.node);
            }
            self.node += 1;
        }
        if let Some(l) = close_l {
            for s in self.cur.iter_mut() {
                *s = t.delta[*s as usize * nl + self.k + l];
            }
        }
        true
    }
}

struct HybridSink<'a, E: Emit> {
    k: usize,
    engines: &'a [LaneEngine],
    lanes: Vec<LaneState>,
    buf: Vec<u64>,
    depth: i64,
    node: usize,
    emit: &'a mut E,
}

impl<E: Emit> EventSink for HybridSink<'_, E> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let (open_l, close_l) = decode_event(ev, self.k);
        if let Some(l) = open_l {
            self.depth += 1;
            self.buf.fill(0);
            let mut any = false;
            for (i, (engine, lane)) in self.engines.iter().zip(&mut self.lanes).enumerate() {
                if lane_open(engine, lane, l, self.depth) {
                    self.buf[i >> 6] |= 1 << (i & 63);
                    any = true;
                }
            }
            if any {
                self.emit.hit(&self.buf, self.node);
            }
            self.node += 1;
        }
        if let Some(l) = close_l {
            self.depth -= 1;
            for (engine, lane) in self.engines.iter().zip(&mut self.lanes) {
                lane_close(engine, lane, self.k, l, self.depth);
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Tier-specific frozen state inside a [`QuerySetCheckpoint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuerySetCheckpointState {
    /// Product tier: the shared product DFA state.
    Product {
        /// Current product state.
        state: u32,
    },
    /// Lanes tier: one global family-table state per member.
    Lanes {
        /// Current lane states.
        lanes: Vec<u32>,
    },
    /// Hybrid tier: one native engine state per member.
    Hybrid {
        /// Current lane states, one per member.
        lanes: Vec<HybridLaneCheckpoint>,
    },
}

/// One hybrid member's frozen state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HybridLaneCheckpoint {
    /// Registerless member: markup DFA state.
    Markup {
        /// Current markup DFA state.
        state: u32,
    },
    /// Stackless member: HAR run (current state, dead flag, chain).
    Har {
        /// Current HAR DFA state.
        current: u32,
        /// Whether the run is dead.
        dead: bool,
        /// The SCC chain: `(state, depth_register)` pairs.
        chain: Vec<(u16, i64)>,
    },
    /// General member: DFA state plus explicit stack frames.
    Stack {
        /// Current DFA state.
        current: u32,
        /// Saved pre-open states, innermost last.
        frames: Vec<u32>,
    },
}

/// A frozen multi-query session at a byte boundary: everything needed
/// to resume is explicit, versioned, and validated on the way back in
/// (wire magic `STQS`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySetCheckpoint {
    fingerprint: u64,
    alphabet: Vec<String>,
    offset: u64,
    node: u64,
    depth: i64,
    lex: u16,
    state: QuerySetCheckpointState,
}

impl QuerySetCheckpoint {
    /// The tier that minted this checkpoint.
    pub fn strategy(&self) -> SetStrategy {
        match &self.state {
            QuerySetCheckpointState::Product { .. } => SetStrategy::Product,
            QuerySetCheckpointState::Lanes { .. } => SetStrategy::Lanes,
            QuerySetCheckpointState::Hybrid { .. } => SetStrategy::Hybrid,
        }
    }

    /// Absolute byte offset of the freeze point.
    pub fn offset(&self) -> usize {
        self.offset as usize
    }

    /// Document-order id the next opened node will get.
    pub fn next_node(&self) -> usize {
        self.node as usize
    }

    /// Depth (opens minus closes) at the freeze point.
    pub fn depth(&self) -> i64 {
        self.depth
    }

    /// Symbols of the alphabet the minting set was compiled over.
    pub fn alphabet_symbols(&self) -> &[String] {
        &self.alphabet
    }

    /// Serializes to the versioned little-endian wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(64);
        w.extend_from_slice(&QS_MAGIC);
        put_u16(&mut w, QUERYSET_CHECKPOINT_VERSION);
        let tag = match &self.state {
            QuerySetCheckpointState::Product { .. } => TAG_PRODUCT,
            QuerySetCheckpointState::Lanes { .. } => TAG_LANES,
            QuerySetCheckpointState::Hybrid { .. } => TAG_HYBRID,
        };
        w.push(tag);
        put_u64(&mut w, self.fingerprint);
        put_u16(&mut w, self.alphabet.len() as u16);
        for sym in &self.alphabet {
            put_u16(&mut w, sym.len() as u16);
            w.extend_from_slice(sym.as_bytes());
        }
        put_u64(&mut w, self.offset);
        put_u64(&mut w, self.node);
        put_i64(&mut w, self.depth);
        put_u16(&mut w, self.lex);
        match &self.state {
            QuerySetCheckpointState::Product { state } => put_u32(&mut w, *state),
            QuerySetCheckpointState::Lanes { lanes } => {
                put_u32(&mut w, lanes.len() as u32);
                for &s in lanes {
                    put_u32(&mut w, s);
                }
            }
            QuerySetCheckpointState::Hybrid { lanes } => {
                put_u32(&mut w, lanes.len() as u32);
                for lane in lanes {
                    match lane {
                        HybridLaneCheckpoint::Markup { state } => {
                            w.push(LANE_MARKUP);
                            put_u32(&mut w, *state);
                        }
                        HybridLaneCheckpoint::Har {
                            current,
                            dead,
                            chain,
                        } => {
                            w.push(LANE_HAR);
                            put_u32(&mut w, *current);
                            w.push(u8::from(*dead));
                            put_u16(&mut w, chain.len() as u16);
                            for (s, r) in chain {
                                put_u16(&mut w, *s);
                                put_i64(&mut w, *r);
                            }
                        }
                        HybridLaneCheckpoint::Stack { current, frames } => {
                            w.push(LANE_STACK);
                            put_u32(&mut w, *current);
                            put_u32(&mut w, frames.len() as u32);
                            for &f in frames {
                                put_u32(&mut w, f);
                            }
                        }
                    }
                }
            }
        }
        w
    }

    /// Deserializes and structurally validates a checkpoint.  Semantic
    /// validation against a concrete query set (fingerprint, state
    /// ranges) happens in [`QuerySet::resume`].
    ///
    /// # Errors
    ///
    /// [`SessionError::Checkpoint`] on any malformed, truncated, or
    /// trailing-garbage input.
    pub fn from_bytes(bytes: &[u8]) -> Result<QuerySetCheckpoint, SessionError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != QS_MAGIC {
            return Err(corrupt("bad magic: not a query-set checkpoint"));
        }
        let version = r.u16()?;
        if version != QUERYSET_CHECKPOINT_VERSION {
            return Err(corrupt(format!("unsupported checkpoint version {version}")));
        }
        let tag = r.u8()?;
        let fingerprint = r.u64()?;
        let n_syms = r.u16()? as usize;
        let mut alphabet = Vec::with_capacity(n_syms.min(r.remaining() / 2));
        for _ in 0..n_syms {
            let len = r.u16()? as usize;
            let raw = r.take(len)?;
            let sym = std::str::from_utf8(raw)
                .map_err(|_| corrupt("alphabet symbol is not UTF-8"))?
                .to_owned();
            alphabet.push(sym);
        }
        let offset = r.u64()?;
        let node = r.u64()?;
        let depth = r.i64()?;
        let lex = r.u16()?;
        let state = match tag {
            TAG_PRODUCT => QuerySetCheckpointState::Product { state: r.u32()? },
            TAG_LANES => {
                let n = r.u32()? as usize;
                if n * 4 > r.remaining() {
                    return Err(corrupt("lane count exceeds checkpoint size"));
                }
                let mut lanes = Vec::with_capacity(n);
                for _ in 0..n {
                    lanes.push(r.u32()?);
                }
                QuerySetCheckpointState::Lanes { lanes }
            }
            TAG_HYBRID => {
                let n = r.u32()? as usize;
                if n > r.remaining() {
                    return Err(corrupt("lane count exceeds checkpoint size"));
                }
                let mut lanes = Vec::with_capacity(n);
                for _ in 0..n {
                    let lane_tag = r.u8()?;
                    lanes.push(match lane_tag {
                        LANE_MARKUP => HybridLaneCheckpoint::Markup { state: r.u32()? },
                        LANE_HAR => {
                            let current = r.u32()?;
                            let dead = match r.u8()? {
                                0 => false,
                                1 => true,
                                _ => return Err(corrupt("har dead flag is not a boolean")),
                            };
                            let chain_len = r.u16()? as usize;
                            if chain_len > MAX_CHAIN {
                                return Err(corrupt("har chain longer than MAX_CHAIN"));
                            }
                            let mut chain = Vec::with_capacity(chain_len);
                            for _ in 0..chain_len {
                                let s = r.u16()?;
                                let reg = r.i64()?;
                                chain.push((s, reg));
                            }
                            HybridLaneCheckpoint::Har {
                                current,
                                dead,
                                chain,
                            }
                        }
                        LANE_STACK => {
                            let current = r.u32()?;
                            let n_frames = r.u32()? as usize;
                            if n_frames * 4 > r.remaining() {
                                return Err(corrupt("stack frames exceed checkpoint size"));
                            }
                            let mut frames = Vec::with_capacity(n_frames);
                            for _ in 0..n_frames {
                                frames.push(r.u32()?);
                            }
                            HybridLaneCheckpoint::Stack { current, frames }
                        }
                        _ => return Err(corrupt("unknown hybrid lane tag")),
                    });
                }
                QuerySetCheckpointState::Hybrid { lanes }
            }
            _ => return Err(corrupt("unknown query-set tier tag")),
        };
        if !r.at_end() {
            return Err(corrupt("trailing bytes after checkpoint"));
        }
        Ok(QuerySetCheckpoint {
            fingerprint,
            alphabet,
            offset,
            node,
            depth,
            lex,
            state,
        })
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// The final tallies of a completed multi-query session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuerySetOutcome {
    /// Per-member document-order ids of the nodes selected *during this
    /// session* (a resumed session reports the tail's matches; node ids
    /// stay global, so prefix + tail concatenate to the whole run).
    pub matches: Vec<Vec<usize>>,
    /// Total nodes opened from the start of the document.
    pub nodes: usize,
}

impl QuerySetOutcome {
    /// Per-member match counts (`matches[q].len()` for each member).
    pub fn counts(&self) -> Vec<usize> {
        self.matches.iter().map(Vec::len).collect()
    }
}

enum QsState {
    Product { s: u32 },
    Lanes { cur: Vec<u32> },
    Hybrid { lanes: Vec<LaneState> },
}

/// An incremental, checkpointable run of a [`QuerySet`] under a set of
/// [`Limits`].  Feed the document in arbitrary segments; freeze at any
/// byte boundary with [`Self::checkpoint`]; close with [`Self::finish`].
pub struct QuerySetSession<'q> {
    set: &'q QuerySet,
    limits: Limits,
    started: std::time::Duration,
    offset: usize,
    node: usize,
    node_base: usize,
    depth: i64,
    lex: u16,
    matches: Vec<Vec<usize>>,
    state: QsState,
    failed: Option<SessionError>,
    obs: Option<SessObs>,
}

impl<'q> QuerySetSession<'q> {
    fn fresh(set: &'q QuerySet, limits: Limits) -> QuerySetSession<'q> {
        let state = match &set.backend {
            SetBackend::Product(t) => QsState::Product { s: t.init },
            SetBackend::Lanes(t) => QsState::Lanes {
                cur: t.init.clone(),
            },
            SetBackend::Hybrid(engines) => QsState::Hybrid {
                lanes: engines.iter().map(fresh_lane).collect(),
            },
        };
        let started = limits.now();
        let obs = SessObs::attach(&limits.obs, 0);
        QuerySetSession {
            set,
            limits,
            started,
            offset: 0,
            node: 0,
            node_base: 0,
            depth: 0,
            lex: TEXT,
            matches: vec![Vec::new(); set.members.len()],
            state,
            failed: None,
            obs,
        }
    }

    /// The id this session carries in its observability handle's trace
    /// (0 when unobserved).
    pub fn obs_session_id(&self) -> u64 {
        self.obs.as_ref().map_or(0, |o| o.id)
    }

    /// Absolute byte offset consumed so far.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Total nodes opened so far (document-order id of the next open).
    pub fn node_count(&self) -> usize {
        self.node
    }

    /// Current depth (opens minus closes).
    pub fn depth(&self) -> i64 {
        self.depth
    }

    /// Per-member ids of nodes selected during this session so far.
    pub fn matches(&self) -> &[Vec<usize>] {
        &self.matches
    }

    /// Feeds the next segment of the document.  Errors are sticky: once
    /// a feed fails, the session stays failed.
    ///
    /// # Errors
    ///
    /// [`SessionError::Parse`] at the first malformed byte or
    /// [`SessionError::Limit`] when a budget is crossed.
    pub fn feed(&mut self, segment: &[u8]) -> Result<(), SessionError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let feed_start = self.offset;
        let res = self.feed_inner(segment);
        if let Some(o) = &self.obs {
            let consumed = (self.offset - feed_start) as u64;
            o.feeds.incr();
            o.bytes.add(consumed);
            o.obs.trace(TraceEvent::SessionFeed {
                session: o.id,
                offset: feed_start as u64,
                bytes: consumed,
            });
        }
        res
    }

    fn feed_inner(&mut self, segment: &[u8]) -> Result<(), SessionError> {
        let mut pos = 0usize;
        while pos < segment.len() {
            let mut end = (pos + WINDOW).min(segment.len());
            if let Some(mb) = self.limits.max_bytes {
                if self.offset >= mb {
                    return self.fail(SessionError::Limit(LimitExceeded {
                        kind: LimitKind::Bytes,
                        limit: mb as u64,
                        offset: mb,
                    }));
                }
                end = end.min(pos + (mb - self.offset));
            }
            if let Some(tb) = self.limits.time_budget {
                if self.limits.now().saturating_sub(self.started) > tb {
                    return self.fail(SessionError::Limit(LimitExceeded {
                        kind: LimitKind::Time,
                        limit: tb.as_millis() as u64,
                        offset: self.offset,
                    }));
                }
            }
            if let Err(e) = self.run_window(&segment[pos..end]) {
                return self.fail(e);
            }
            self.offset += end - pos;
            pos = end;
        }
        Ok(())
    }

    fn fail(&mut self, e: SessionError) -> Result<(), SessionError> {
        if let Some(o) = &self.obs {
            if let SessionError::Limit(l) = &e {
                o.breaches.incr();
                o.obs.trace(TraceEvent::LimitBreach {
                    session: o.id,
                    kind: limit_kind_name(l.kind),
                    offset: l.offset as u64,
                });
            }
        }
        self.failed = Some(e.clone());
        Err(e)
    }

    /// Processes one window; `self.offset` is the absolute offset of
    /// `w[0]` and is only advanced by the caller afterwards.  Hot state
    /// is hoisted into locals for the window, as in `EngineSession`.
    fn run_window(&mut self, w: &[u8]) -> Result<(), SessionError> {
        let max_depth = self.limits.max_depth.map(|d| d as i64).unwrap_or(i64::MAX);
        let min_depth = self
            .limits
            .max_imbalance
            .map(|d| -(d as i64))
            .unwrap_or(i64::MIN);
        let base = self.offset;
        let force_scalar = self.limits.force_scalar || self.set.lexer.force_scalar();
        let mut stats = ScanStats::default();
        let mut depth = self.depth;
        let mut node = self.node;
        let mut lx = self.lex;
        let k = self.set.lexer.k();
        let lexer = &self.set.lexer;
        let matches = &mut self.matches;
        let mut lim_err: Option<SessionError> = None;
        let end = match (&mut self.state, &self.set.backend) {
            (QsState::Product { s }, SetBackend::Product(t)) => {
                let mut st = *s;
                let mut on_event = |ev: u16, pos: usize| -> bool {
                    let (open_l, close_l) = decode_event(ev, k);
                    if let Some(l) = open_l {
                        depth += 1;
                        if depth > max_depth {
                            lim_err = Some(depth_error(max_depth, base + pos));
                            return false;
                        }
                        st = t.delta[st as usize * t.n_classes + t.class_of[l] as usize];
                        let masks = &t.accept[st as usize * t.words..][..t.words];
                        for (wd, &word0) in masks.iter().enumerate() {
                            let mut word = word0;
                            while word != 0 {
                                matches[(wd << 6) + word.trailing_zeros() as usize].push(node);
                                word &= word - 1;
                            }
                        }
                        node += 1;
                    }
                    if let Some(l) = close_l {
                        depth -= 1;
                        if depth < min_depth {
                            lim_err = Some(imbalance_error(min_depth, base + pos));
                            return false;
                        }
                        st = t.delta[st as usize * t.n_classes + t.class_of[k + l] as usize];
                    }
                    true
                };
                let end = drive_window(lexer, w, &mut lx, force_scalar, &mut stats, &mut on_event);
                *s = st;
                end
            }
            (QsState::Lanes { cur }, SetBackend::Lanes(t)) => {
                let nl = t.n_letters;
                let mut on_event = |ev: u16, pos: usize| -> bool {
                    let (open_l, close_l) = decode_event(ev, k);
                    if let Some(l) = open_l {
                        depth += 1;
                        if depth > max_depth {
                            lim_err = Some(depth_error(max_depth, base + pos));
                            return false;
                        }
                        for (i, s) in cur.iter_mut().enumerate() {
                            let ns = t.delta[*s as usize * nl + l];
                            *s = ns;
                            if t.accepts(ns) {
                                matches[i].push(node);
                            }
                        }
                        node += 1;
                    }
                    if let Some(l) = close_l {
                        depth -= 1;
                        if depth < min_depth {
                            lim_err = Some(imbalance_error(min_depth, base + pos));
                            return false;
                        }
                        for s in cur.iter_mut() {
                            *s = t.delta[*s as usize * nl + k + l];
                        }
                    }
                    true
                };
                drive_window(lexer, w, &mut lx, force_scalar, &mut stats, &mut on_event)
            }
            (QsState::Hybrid { lanes }, SetBackend::Hybrid(engines)) => {
                let mut on_event = |ev: u16, pos: usize| -> bool {
                    let (open_l, close_l) = decode_event(ev, k);
                    if let Some(l) = open_l {
                        depth += 1;
                        if depth > max_depth {
                            lim_err = Some(depth_error(max_depth, base + pos));
                            return false;
                        }
                        for (i, (engine, lane)) in engines.iter().zip(lanes.iter_mut()).enumerate()
                        {
                            if lane_open(engine, lane, l, depth) {
                                matches[i].push(node);
                            }
                        }
                        node += 1;
                    }
                    if let Some(l) = close_l {
                        depth -= 1;
                        if depth < min_depth {
                            lim_err = Some(imbalance_error(min_depth, base + pos));
                            return false;
                        }
                        for (engine, lane) in engines.iter().zip(lanes.iter_mut()) {
                            lane_close(engine, lane, k, l, depth);
                        }
                    }
                    true
                };
                drive_window(lexer, w, &mut lx, force_scalar, &mut stats, &mut on_event)
            }
            _ => unreachable!("state/backend agree by construction"),
        };
        let res = match end {
            DriveEnd::Done => Ok(()),
            DriveEnd::Parse(pos) => Err(parse_error(base + pos)),
            DriveEnd::Stopped => Err(lim_err.take().expect("stopped sink set its error")),
        };
        self.depth = depth;
        self.node = node;
        self.lex = lx;
        if let Some(o) = &self.obs {
            o.simd_windows.add(stats.simd_windows);
            o.fallback_windows.add(stats.fallback_windows);
        }
        res
    }

    /// Freezes the session at the current byte boundary.
    ///
    /// # Errors
    ///
    /// [`SessionError::Checkpoint`] if the session has already failed —
    /// a failed run has no resumable state.
    pub fn checkpoint(&self) -> Result<QuerySetCheckpoint, SessionError> {
        if let Some(e) = &self.failed {
            return Err(corrupt(format!("session already failed: {e}")));
        }
        let state = match &self.state {
            QsState::Product { s } => QuerySetCheckpointState::Product { state: *s },
            QsState::Lanes { cur } => QuerySetCheckpointState::Lanes { lanes: cur.clone() },
            QsState::Hybrid { lanes } => QuerySetCheckpointState::Hybrid {
                lanes: lanes
                    .iter()
                    .map(|lane| match lane {
                        LaneState::Markup { s } => HybridLaneCheckpoint::Markup { state: *s },
                        LaneState::Har { run } => HybridLaneCheckpoint::Har {
                            current: run.current as u32,
                            dead: run.dead,
                            chain: (0..run.chain_len)
                                .map(|i| (run.chain[i], run.regs[i]))
                                .collect(),
                        },
                        LaneState::Stack { s, frames } => HybridLaneCheckpoint::Stack {
                            current: *s,
                            frames: frames.clone(),
                        },
                    })
                    .collect(),
            },
        };
        if let Some(o) = &self.obs {
            o.checkpoints.incr();
            let last = o.last_checkpoint_offset.replace(self.offset as u64);
            o.checkpoint_interval
                .record((self.offset as u64).saturating_sub(last));
            o.obs.trace(TraceEvent::SessionCheckpoint {
                session: o.id,
                offset: self.offset as u64,
            });
        }
        Ok(QuerySetCheckpoint {
            fingerprint: self.set.fingerprint,
            alphabet: alphabet_symbols(&self.set.alphabet),
            offset: self.offset as u64,
            node: self.node as u64,
            depth: self.depth,
            lex: self.lex,
            state,
        })
    }

    /// Declares end-of-input and returns the session's tallies.
    ///
    /// # Errors
    ///
    /// The sticky error if the session already failed, or
    /// [`SessionError::Parse`] if the input ended inside markup.
    pub fn finish(self) -> Result<QuerySetOutcome, SessionError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        if self.lex != TEXT {
            return Err(SessionError::Parse(TreeError::Parse {
                position: self.offset,
                message: "input ended inside markup".to_owned(),
            }));
        }
        if let Some(o) = &self.obs {
            o.finished.incr();
            o.nodes.add((self.node - self.node_base) as u64);
            o.matches
                .add(self.matches.iter().map(|m| m.len() as u64).sum());
        }
        Ok(QuerySetOutcome {
            matches: self.matches,
            nodes: self.node,
        })
    }
}

impl QuerySet {
    /// Opens a fresh resilient multi-query session under `limits`.
    pub fn session(&self, limits: Limits) -> QuerySetSession<'_> {
        let session = QuerySetSession::fresh(self, limits);
        if let Some(o) = &session.obs {
            o.obs.counter("session_started_total").incr();
            o.obs.trace(TraceEvent::SessionStart { session: o.id });
        }
        session
    }

    /// Reopens a session from a checkpoint minted by the *same* query
    /// set (verified by fingerprint).
    ///
    /// # Errors
    ///
    /// [`SessionError::Checkpoint`] on a tier or fingerprint mismatch,
    /// or any out-of-range frozen state.
    pub fn resume(
        &self,
        checkpoint: &QuerySetCheckpoint,
        limits: Limits,
    ) -> Result<QuerySetSession<'_>, SessionError> {
        if checkpoint.strategy() != self.strategy() {
            return Err(corrupt(format!(
                "checkpoint is for a {:?} tier; this set plans {:?}",
                checkpoint.strategy(),
                self.strategy()
            )));
        }
        if checkpoint.fingerprint != self.fingerprint {
            return Err(corrupt(
                "checkpoint was minted by a different query set or alphabet",
            ));
        }
        const MAX_STREAM_OFFSET: u64 = 1 << 60;
        if checkpoint.offset > MAX_STREAM_OFFSET {
            return Err(corrupt("stream offset implausibly large"));
        }
        if checkpoint.node > checkpoint.offset {
            return Err(corrupt("node counter exceeds bytes consumed"));
        }
        if checkpoint.depth.unsigned_abs() > checkpoint.offset {
            return Err(corrupt("depth exceeds bytes consumed"));
        }
        if checkpoint.lex as usize >= self.lexer.n_states() {
            return Err(corrupt("lexer state out of range"));
        }
        let state = match (&checkpoint.state, &self.backend) {
            (QuerySetCheckpointState::Product { state }, SetBackend::Product(t)) => {
                if *state as usize >= t.n_states {
                    return Err(corrupt("product state out of range"));
                }
                QsState::Product { s: *state }
            }
            (QuerySetCheckpointState::Lanes { lanes }, SetBackend::Lanes(t)) => {
                if lanes.len() != t.n_members() {
                    return Err(corrupt("lane count does not match the query set"));
                }
                for (i, &s) in lanes.iter().enumerate() {
                    if !t.in_block(i, s) {
                        return Err(corrupt("lane state out of range"));
                    }
                }
                QsState::Lanes { cur: lanes.clone() }
            }
            (QuerySetCheckpointState::Hybrid { lanes }, SetBackend::Hybrid(engines)) => {
                if lanes.len() != engines.len() {
                    return Err(corrupt("lane count does not match the query set"));
                }
                let mut restored = Vec::with_capacity(lanes.len());
                for (lane, engine) in lanes.iter().zip(engines) {
                    restored.push(restore_lane(lane, engine, checkpoint.offset)?);
                }
                QsState::Hybrid { lanes: restored }
            }
            _ => unreachable!("tier equality checked above"),
        };
        let mut session = QuerySetSession::fresh(self, limits);
        session.offset = checkpoint.offset as usize;
        session.node = checkpoint.node as usize;
        session.node_base = checkpoint.node as usize;
        session.depth = checkpoint.depth;
        session.lex = checkpoint.lex;
        session.state = state;
        if let Some(o) = &session.obs {
            o.last_checkpoint_offset.set(checkpoint.offset);
            o.obs.counter("session_resumed_total").incr();
            o.obs.trace(TraceEvent::SessionResume {
                session: o.id,
                offset: checkpoint.offset,
            });
        }
        Ok(session)
    }

    /// Runs the whole document through a session in one call.
    ///
    /// # Errors
    ///
    /// As for [`QuerySetSession::feed`] / [`QuerySetSession::finish`].
    pub fn run_session(
        &self,
        bytes: &[u8],
        limits: &Limits,
    ) -> Result<QuerySetOutcome, SessionError> {
        let mut session = self.session(limits.clone());
        session.feed(bytes)?;
        session.finish()
    }

    /// Runs the document, freezing a checkpoint at each cut offset (out
    /// of range or unordered cuts are ignored).  Returns the final
    /// tallies and the checkpoints, one per surviving cut in order.
    ///
    /// # Errors
    ///
    /// As for [`QuerySetSession::feed`] / [`QuerySetSession::finish`].
    pub fn run_with_checkpoints(
        &self,
        bytes: &[u8],
        cuts: &[usize],
        limits: &Limits,
    ) -> Result<(QuerySetOutcome, Vec<QuerySetCheckpoint>), SessionError> {
        let mut session = self.session(limits.clone());
        let mut checkpoints = Vec::new();
        let mut prev = 0usize;
        for &cut in cuts {
            if cut < prev || cut > bytes.len() {
                continue;
            }
            session.feed(&bytes[prev..cut])?;
            checkpoints.push(session.checkpoint()?);
            prev = cut;
        }
        session.feed(&bytes[prev..])?;
        Ok((session.finish()?, checkpoints))
    }

    /// Resumes from `checkpoint` and runs the remainder of the document.
    /// The outcome's matches are those of the tail; node ids are global.
    ///
    /// # Errors
    ///
    /// As for [`Self::resume`] / [`QuerySetSession::feed`] /
    /// [`QuerySetSession::finish`].
    pub fn resume_from(
        &self,
        checkpoint: &QuerySetCheckpoint,
        rest: &[u8],
        limits: &Limits,
    ) -> Result<QuerySetOutcome, SessionError> {
        let mut session = self.resume(checkpoint, limits.clone())?;
        session.feed(rest)?;
        session.finish()
    }
}

fn restore_lane(
    lane: &HybridLaneCheckpoint,
    engine: &LaneEngine,
    offset: u64,
) -> Result<LaneState, SessionError> {
    Ok(match (lane, engine) {
        (HybridLaneCheckpoint::Markup { state }, LaneEngine::Markup(dfa)) => {
            if *state as usize >= dfa.n_states() {
                return Err(corrupt("markup lane state out of range"));
            }
            LaneState::Markup { s: *state }
        }
        (
            HybridLaneCheckpoint::Har {
                current,
                dead,
                chain,
            },
            LaneEngine::Har(program),
        ) => {
            let dfa = program.core().dfa();
            if *current as usize >= dfa.n_states() || chain.len() > MAX_CHAIN {
                return Err(corrupt("har lane state out of range"));
            }
            let mut run = HarRun {
                current: *current as usize,
                dead: *dead,
                chain: [0; MAX_CHAIN],
                regs: [0; MAX_CHAIN],
                chain_len: chain.len(),
            };
            for (i, (s, r)) in chain.iter().enumerate() {
                run.chain[i] = *s;
                run.regs[i] = *r;
            }
            LaneState::Har { run }
        }
        (HybridLaneCheckpoint::Stack { current, frames }, LaneEngine::Stack(dfa)) => {
            if *current as usize >= dfa.n_states() {
                return Err(corrupt("stack lane state out of range"));
            }
            if frames.len() as u64 > offset {
                return Err(corrupt("stack frames exceed bytes consumed"));
            }
            for &f in frames {
                if f as usize >= dfa.n_states() {
                    return Err(corrupt("stack frame out of range"));
                }
            }
            LaneState::Stack {
                s: *current,
                frames: frames.clone(),
            }
        }
        _ => return Err(corrupt("lane kind does not match the member's engine")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn g2() -> Alphabet {
        Alphabet::of_chars("ab")
    }

    fn g3() -> Alphabet {
        Alphabet::of_chars("abc")
    }

    /// Every strategy class from the paper's table, plus overlaps.
    const MIXED: &[&str] = &["a.*b", "ab", ".*a.*b", ".*ab", "a.*", ".*"];
    const AR_ONLY: &[&str] = &["a.*b", "a.*", "b.*a", ".*"];

    const DOCS: &[&[u8]] = &[
        b"",
        b"<a></a>",
        b"<a><b></b><a></a></a>",
        b"<a><b><a></a></b></a><b></b>",
        b"<a/><b><a/></b>",
        b"</a><a></a>",
        b"</b></b><a><b></b></a>",
        b"<a attr=\"x\"><b/></a>",
        b"text <a>more<b></b></a> tail",
    ];

    fn independent(patterns: &[&str], alphabet: &Alphabet, doc: &[u8]) -> Vec<Vec<usize>> {
        patterns
            .iter()
            .map(|p| {
                Query::compile(p, alphabet)
                    .unwrap()
                    .select(doc)
                    .expect("single-query run")
            })
            .collect()
    }

    #[test]
    fn tier_selection_follows_the_decision_rule() {
        let set = QuerySet::compile(AR_ONLY, &g2()).unwrap();
        assert_eq!(set.strategy(), SetStrategy::Product);
        assert!(set.product_states().is_some());
        let forced = QuerySet::compile_with_budget(AR_ONLY, &g2(), 0).unwrap();
        assert_eq!(forced.strategy(), SetStrategy::Lanes);
        let mixed = QuerySet::compile(MIXED, &g2()).unwrap();
        assert_eq!(mixed.strategy(), SetStrategy::Hybrid);
    }

    #[test]
    fn every_tier_matches_independent_runs() {
        for (patterns, budget) in [
            (AR_ONLY, DEFAULT_PRODUCT_BUDGET),
            (AR_ONLY, 0),
            (MIXED, DEFAULT_PRODUCT_BUDGET),
        ] {
            let set = QuerySet::compile_with_budget(patterns, &g2(), budget).unwrap();
            for doc in DOCS {
                let expected = independent(patterns, &g2(), doc);
                assert_eq!(
                    set.select_all(doc).unwrap(),
                    expected,
                    "select_all diverged ({:?}, budget {budget}) on {:?}",
                    set.strategy(),
                    String::from_utf8_lossy(doc)
                );
                let counts: Vec<usize> = expected.iter().map(Vec::len).collect();
                assert_eq!(set.count_all(doc).unwrap(), counts);
            }
        }
    }

    #[test]
    fn scalar_and_indexed_paths_agree() {
        for patterns in [AR_ONLY, MIXED] {
            let mut set = QuerySet::compile(patterns, &g2()).unwrap();
            for doc in DOCS {
                let indexed = set.select_all(doc).unwrap();
                set.set_force_scalar(true);
                assert_eq!(set.select_all(doc).unwrap(), indexed);
                set.set_force_scalar(false);
            }
        }
    }

    #[test]
    fn compression_preserves_per_query_semantics() {
        let compressed = QuerySet::compile(AR_ONLY, &g3()).unwrap();
        let raw = QuerySet::compile_uncompressed(AR_ONLY, &g3(), DEFAULT_PRODUCT_BUDGET).unwrap();
        assert_eq!(compressed.strategy(), SetStrategy::Product);
        assert_eq!(raw.strategy(), SetStrategy::Product);
        assert!(compressed.product_classes().unwrap() <= raw.product_classes().unwrap());
        for doc in DOCS {
            assert_eq!(compressed.select_all(doc), raw.select_all(doc));
        }
    }

    #[test]
    fn empty_set_still_validates_the_document() {
        let set = QuerySet::compile::<&str>(&[], &g2()).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.count_all(b"<a></a>").unwrap(), Vec::<usize>::new());
        assert!(set.count_all(b"<a").is_err());
        assert!(set.count_all(b"<zebra></zebra>").is_err());
    }

    #[test]
    fn one_shot_errors_match_the_single_query_engine() {
        let set = QuerySet::compile(AR_ONLY, &g2()).unwrap();
        let q = Query::compile(AR_ONLY[0], &g2()).unwrap();
        for doc in [&b"<a"[..], b"<c></c>", b"< a></a>", b"<a><"] {
            let ours = set.count_all(doc);
            let theirs = q.count(doc);
            match (ours, theirs) {
                (Err(e1), Err(e2)) => assert_eq!(format!("{e1}"), format!("{e2}")),
                (o, t) => panic!("error mismatch on {doc:?}: {o:?} vs {t:?}"),
            }
        }
    }

    #[test]
    fn resume_equals_whole_run_at_every_cut() {
        let doc: &[u8] = b"<a><b><a></a></b><a/></a><b>x</b>";
        for (patterns, budget) in [
            (AR_ONLY, DEFAULT_PRODUCT_BUDGET),
            (AR_ONLY, 0),
            (MIXED, DEFAULT_PRODUCT_BUDGET),
        ] {
            let set = QuerySet::compile_with_budget(patterns, &g2(), budget).unwrap();
            let whole = set.run_session(doc, &Limits::none()).unwrap();
            for cut in 0..=doc.len() {
                let (_, cps) = set
                    .run_with_checkpoints(doc, &[cut], &Limits::none())
                    .unwrap();
                let cp = &cps[0];
                let wire = QuerySetCheckpoint::from_bytes(&cp.to_bytes()).unwrap();
                assert_eq!(&wire, cp, "wire roundtrip at cut {cut}");
                let tail = set
                    .resume_from(&wire, &doc[cut..], &Limits::none())
                    .unwrap();
                let mut joined = set
                    .run_with_checkpoints(doc, &[cut], &Limits::none())
                    .map(|(o, _)| o)
                    .unwrap();
                // Recompose: prefix matches are those of the whole run
                // with node id < the checkpoint's next node.
                for (q, tail_m) in tail.matches.iter().enumerate() {
                    let mut prefix: Vec<usize> = whole.matches[q]
                        .iter()
                        .copied()
                        .filter(|&n| n < wire.next_node())
                        .collect();
                    prefix.extend_from_slice(tail_m);
                    assert_eq!(
                        prefix,
                        whole.matches[q],
                        "resume diverged at cut {cut} (tier {:?}, member {q})",
                        set.strategy()
                    );
                }
                assert_eq!(tail.nodes, whole.nodes, "node tally at cut {cut}");
                joined.matches.clear();
            }
        }
    }

    #[test]
    fn session_agrees_with_one_shot() {
        for (patterns, budget) in [
            (AR_ONLY, DEFAULT_PRODUCT_BUDGET),
            (AR_ONLY, 0),
            (MIXED, DEFAULT_PRODUCT_BUDGET),
        ] {
            let set = QuerySet::compile_with_budget(patterns, &g2(), budget).unwrap();
            for doc in DOCS {
                let one_shot = set.select_all(doc);
                let session = set.run_session(doc, &Limits::none());
                match (one_shot, session) {
                    (Ok(sel), Ok(out)) => assert_eq!(sel, out.matches),
                    (Err(_), Err(_)) => {}
                    (o, s) => panic!("one-shot/session disagree on {doc:?}: {o:?} vs {s:?}"),
                }
            }
        }
    }

    #[test]
    fn limits_are_enforced() {
        let set = QuerySet::compile(MIXED, &g2()).unwrap();
        let deep = b"<a><a><a><a></a></a></a></a>";
        let err = set
            .run_session(deep, &Limits::none().with_max_depth(2))
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::Limit(LimitExceeded {
                kind: LimitKind::Depth,
                ..
            })
        ));
        let err = set
            .run_session(deep, &Limits::none().with_max_bytes(4))
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::Limit(LimitExceeded {
                kind: LimitKind::Bytes,
                ..
            })
        ));
    }

    #[test]
    fn hostile_checkpoints_are_rejected() {
        let set = QuerySet::compile(MIXED, &g2()).unwrap();
        let (_, cps) = set
            .run_with_checkpoints(b"<a><b></b></a>", &[7], &Limits::none())
            .unwrap();
        let wire = cps[0].to_bytes();
        // Truncations at every length must error, never panic.
        for len in 0..wire.len() {
            assert!(QuerySetCheckpoint::from_bytes(&wire[..len]).is_err());
        }
        // Trailing garbage.
        let mut padded = wire.clone();
        padded.push(0);
        assert!(QuerySetCheckpoint::from_bytes(&padded).is_err());
        // A different set refuses the checkpoint.
        let other = QuerySet::compile(AR_ONLY, &g2()).unwrap();
        let cp = QuerySetCheckpoint::from_bytes(&wire).unwrap();
        assert!(other.resume(&cp, Limits::none()).is_err());
    }

    #[test]
    fn member_metadata_is_reported() {
        let set = QuerySet::compile(MIXED, &g2()).unwrap();
        assert_eq!(set.len(), MIXED.len());
        assert_eq!(set.member_pattern(0), Some("a.*b"));
        assert_eq!(set.member_strategy(0), Strategy::Registerless);
        assert_eq!(set.member_strategy(1), Strategy::Stackless);
        assert_eq!(set.member_strategy(3), Strategy::Stack);
    }
}
