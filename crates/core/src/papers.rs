//! Every concrete automaton, language, and example the paper names, as
//! constructors keyed by figure/example number.  Tests and the experiment
//! harness refer to these instead of re-deriving them, so the reproduction
//! index in EXPERIMENTS.md has a single source of truth.

use st_automata::{compile_regex, Alphabet, Dfa};

use crate::analysis::Analysis;
use crate::classify::{classify, ClassReport};

/// Γ = {a, b, c}, the alphabet of most worked examples.
pub fn gamma_abc() -> Alphabet {
    Alphabet::of_chars("abc")
}

/// Γ = {a, b}, the alphabet of Fig. 2.
pub fn gamma_ab() -> Alphabet {
    Alphabet::of_chars("ab")
}

/// Fig. 2: the reversible two-state automaton over {a, b} — `a` swaps the
/// states, `b` fixes them; accepts words with an even number of `a`s.
pub fn fig2() -> Dfa {
    Dfa::from_rows(2, 0, vec![true, false], vec![vec![1, 0], vec![0, 1]])
        .expect("Fig. 2 table is well-formed")
}

/// Which automaton of Fig. 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig3 {
    /// (a) `a Γ*b` — almost-reversible.
    A,
    /// (b) `ab` — R-trivial, HAR, not almost-reversible.
    B,
    /// (c) `Γ*a Γ*b` — HAR, neither almost-reversible nor R-trivial.
    C,
    /// (d) `Γ*ab` — not HAR.
    D,
}

impl Fig3 {
    /// The regex the figure caption names (our concrete syntax).
    pub fn pattern(self) -> &'static str {
        match self {
            Fig3::A => "a.*b",
            Fig3::B => "ab",
            Fig3::C => ".*a.*b",
            Fig3::D => ".*ab",
        }
    }

    /// The figure's caption text.
    pub fn caption(self) -> &'static str {
        match self {
            Fig3::A => "a Γ*b",
            Fig3::B => "ab",
            Fig3::C => "Γ*a Γ*b",
            Fig3::D => "Γ*ab",
        }
    }
}

/// Fig. 3: the four "languages of increasing hardness" over Γ = {a, b, c},
/// as canonical minimal automata.
pub fn fig3(which: Fig3) -> Dfa {
    compile_regex(which.pattern(), &gamma_abc()).expect("figure patterns parse")
}

/// One row of the Example 2.12 table.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// The XPath spelling from the paper.
    pub xpath: &'static str,
    /// The JSONPath spelling from the paper.
    pub jsonpath: &'static str,
    /// The regular-expression spelling (paper notation).
    pub regex_display: &'static str,
    /// Our concrete regex syntax.
    pub pattern: &'static str,
    /// Full classification (recomputed, not hard-coded).
    pub report: ClassReport,
}

/// Example 2.12's table, with verdicts *recomputed* by the decision
/// procedures (the paper's ✓/✗ row is asserted in tests against these).
pub fn table_2_12() -> Vec<TableRow> {
    let g = gamma_abc();
    let rows: [(&str, &str, &str, &str); 4] = [
        ("/a//b", "$.a..b", "a Γ*b", "a.*b"),
        ("/a/b", "$.a.b", "a b", "ab"),
        ("//a//b", "$..a..b", "Γ*a Γ*b", ".*a.*b"),
        ("//a/b", "$..a.b", "Γ*a b", ".*ab"),
    ];
    rows.into_iter()
        .map(|(xpath, jsonpath, regex_display, pattern)| {
            let dfa = compile_regex(pattern, &g).expect("table patterns parse");
            TableRow {
                xpath,
                jsonpath,
                regex_display,
                pattern,
                report: classify(&Analysis::new(&dfa)),
            }
        })
        .collect()
}

/// Fig. 1a's descendent pattern π: `b{b{a{}c{}}c{}}` over {a, b, c}.
pub fn fig1a_pattern() -> crate::pattern::DescendantPattern {
    crate::pattern::parse_pattern("b{b{a{}c{}}c{}}", &gamma_abc()).expect("Fig. 1a pattern parses")
}

/// Example 2.5's sibling language: H_L for L = Γ*aΓ* ("some child of the
/// root is labelled a") — stackless but not registerless; here as the
/// witnessing path language of Example 2.5's discussion, `Γ a Γ*`
/// ("a branch whose second label is a").
pub fn example_2_5_language() -> Dfa {
    compile_regex(".a.*", &gamma_abc()).expect("pattern parses")
}

/// Example 2.6/2.7's languages: `Γ*a Γ*b` (descendant — stackless) and
/// `Γ*ab` (child — not stackless).
pub fn example_2_6_descendant() -> Dfa {
    fig3(Fig3::C)
}

/// See [`example_2_6_descendant`].
pub fn example_2_7_child() -> Dfa {
    fig3(Fig3::D)
}

/// Section 4.2's cost-of-succinctness language: even number of `a`s
/// (Fig. 2's automaton) — registerless under markup, not even stackless
/// under the term encoding.
pub fn section_4_2_language() -> Dfa {
    compile_regex("(b*ab*a)*b*", &gamma_ab()).expect("pattern parses")
}

/// Example 2.5's construction, executable: the tree language H_L — "the
/// sequence of labels of the **root's children** forms a word in L" — is
/// stackless for every regular L.  The program stores depth 1 in its only
/// register after the first opening tag and simulates the DFA of L over
/// exactly the closing tags whose depth equals the stored value (in a
/// valid encoding those are precisely the root's children, left to right).
#[derive(Clone, Debug)]
pub struct ChildrenOfRootProgram {
    dfa: Dfa,
}

impl ChildrenOfRootProgram {
    /// Wraps the DFA of the sibling language L ⊆ Γ*.
    pub fn new(dfa: Dfa) -> Self {
        Self { dfa }
    }
}

/// Control state of [`ChildrenOfRootProgram`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChildrenOfRootState {
    /// Nothing read yet.
    Start,
    /// Register loaded; simulating the sibling DFA (its current state).
    Running(usize),
}

impl crate::model::DraProgram for ChildrenOfRootProgram {
    type Input = st_automata::Tag;
    type State = ChildrenOfRootState;

    fn n_registers(&self) -> usize {
        1
    }

    fn init_state(&self) -> Self::State {
        ChildrenOfRootState::Start
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        match state {
            ChildrenOfRootState::Start => self.dfa.is_accepting(self.dfa.init()),
            ChildrenOfRootState::Running(q) => self.dfa.is_accepting(*q),
        }
    }

    fn step(
        &self,
        state: &Self::State,
        input: st_automata::Tag,
        cmps: crate::model::RegCmps,
    ) -> (Self::State, crate::model::LoadMask) {
        match *state {
            ChildrenOfRootState::Start => {
                // First tag of a valid encoding opens the root at depth 1:
                // store it.
                (ChildrenOfRootState::Running(self.dfa.init()), 1)
            }
            ChildrenOfRootState::Running(q) => {
                let next = match input {
                    st_automata::Tag::Close(l) if cmps.is_equal(0) => self.dfa.step(q, l.index()),
                    _ => q,
                };
                // Reload on the root's own closing tag (depth 0 < stored 1)
                // to stay formally restricted; the run is over then anyway.
                let reload = u64::from(cmps.is_greater(0));
                (ChildrenOfRootState::Running(next), reload)
            }
        }
    }
}

/// Example 2.10's **positive** half, executable: "even a finite automaton
/// can check if the streamed tree contains two consecutive siblings with
/// labels a and b: it suffices to check if the read encoding contains the
/// closing tag ā followed immediately by the opening tag b."  Returns a
/// DFA over the markup tag alphabet (`0..k` opens, `k..2k` closes).
pub fn two_consecutive_siblings_dfa(
    a: st_automata::Letter,
    b: st_automata::Letter,
    k: usize,
) -> Dfa {
    // States: 0 = neutral, 1 = just read ā, 2 = accept sink.
    let close_a = k + a.index();
    let open_b = b.index();
    let mut rows = Vec::with_capacity(3);
    for state in 0..3usize {
        let mut row = Vec::with_capacity(2 * k);
        for tag in 0..2 * k {
            row.push(match state {
                2 => 2,
                1 if tag == open_b => 2,
                _ if tag == close_a => 1,
                _ => 0,
            });
        }
        rows.push(row);
    }
    Dfa::from_rows(2 * k, 0, vec![false, false, true], rows)
        .expect("sibling detector is well-formed")
}

/// Example 2.6's first construction, executable: "the **first** a-labelled
/// node (in document order) has a b-labelled descendent".  One register:
/// load the depth at the first `a`, then accept iff `b` opens before the
/// depth drops strictly below the stored value.
#[derive(Clone, Debug)]
pub struct FirstAHasBDescendantProgram {
    /// The label whose first occurrence anchors the search.
    pub a: st_automata::Letter,
    /// The label to find below the anchor.
    pub b: st_automata::Letter,
}

/// Control state of [`FirstAHasBDescendantProgram`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FirstAState {
    /// No `a` yet.
    Seeking,
    /// Inside the first `a`'s subtree, scanning for `b`.
    Scanning,
    /// Verdict reached (sticky).
    Decided(bool),
}

impl crate::model::DraProgram for FirstAHasBDescendantProgram {
    type Input = st_automata::Tag;
    type State = FirstAState;

    fn n_registers(&self) -> usize {
        1
    }

    fn init_state(&self) -> Self::State {
        FirstAState::Seeking
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        matches!(state, FirstAState::Decided(true))
    }

    fn step(
        &self,
        state: &Self::State,
        input: st_automata::Tag,
        cmps: crate::model::RegCmps,
    ) -> (Self::State, crate::model::LoadMask) {
        let stale = u64::from(cmps.is_greater(0));
        match *state {
            FirstAState::Seeking => match input {
                st_automata::Tag::Open(l) if l == self.a => (FirstAState::Scanning, 1),
                _ => (FirstAState::Seeking, stale),
            },
            FirstAState::Scanning => match input {
                st_automata::Tag::Open(l) if l == self.b => (FirstAState::Decided(true), stale),
                _ if cmps.is_greater(0) => (FirstAState::Decided(false), stale),
                _ => (FirstAState::Scanning, stale),
            },
            FirstAState::Decided(v) => (FirstAState::Decided(v), stale),
        }
    }
}

/// Example 2.6's second construction: "**some** a-labelled node has a
/// b-labelled descendent" — the looped variant that restarts whenever a
/// candidate's subtree closes unmatched (minimality makes this sound:
/// ancestors inherit descendants).
#[derive(Clone, Debug)]
pub struct SomeAHasBDescendantProgram {
    /// The anchor label.
    pub a: st_automata::Letter,
    /// The label to find below an anchor.
    pub b: st_automata::Letter,
}

impl crate::model::DraProgram for SomeAHasBDescendantProgram {
    type Input = st_automata::Tag;
    type State = FirstAState;

    fn n_registers(&self) -> usize {
        1
    }

    fn init_state(&self) -> Self::State {
        FirstAState::Seeking
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        matches!(state, FirstAState::Decided(true))
    }

    fn step(
        &self,
        state: &Self::State,
        input: st_automata::Tag,
        cmps: crate::model::RegCmps,
    ) -> (Self::State, crate::model::LoadMask) {
        let stale = u64::from(cmps.is_greater(0));
        match *state {
            FirstAState::Seeking => match input {
                st_automata::Tag::Open(l) if l == self.a => (FirstAState::Scanning, 1),
                _ => (FirstAState::Seeking, stale),
            },
            FirstAState::Scanning => match input {
                st_automata::Tag::Open(l) if l == self.b => (FirstAState::Decided(true), stale),
                // Candidate closed unmatched: back to the loop.
                _ if cmps.is_greater(0) => (FirstAState::Seeking, stale),
                _ => (FirstAState::Scanning, stale),
            },
            FirstAState::Decided(v) => (FirstAState::Decided(v), stale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_automata::ops::equivalent;

    #[test]
    fn fig2_is_minimal_and_reversible_shaped() {
        let d = fig2();
        assert_eq!(d.minimize().n_states(), 2);
        // Same language as the regex rendering.
        assert!(equivalent(&d, &section_4_2_language()));
    }

    #[test]
    fn fig3_minimal_sizes_match_the_figures() {
        // Fig. 3a and 3b draw four states; 3c and 3d draw three.
        assert_eq!(fig3(Fig3::A).n_states(), 4);
        assert_eq!(fig3(Fig3::B).n_states(), 4);
        assert_eq!(fig3(Fig3::C).n_states(), 3);
        assert_eq!(fig3(Fig3::D).n_states(), 3);
    }

    #[test]
    fn table_rows_reproduce_the_paper_verdicts() {
        let table = table_2_12();
        let expected = [(true, true), (false, true), (false, true), (false, false)];
        for (row, (registerless, stackless)) in table.iter().zip(expected) {
            assert_eq!(
                row.report.query_registerless(),
                registerless,
                "registerless({})",
                row.regex_display
            );
            assert_eq!(
                row.report.query_stackless(),
                stackless,
                "stackless({})",
                row.regex_display
            );
        }
    }

    #[test]
    fn example_2_5_children_of_root() {
        use crate::model::{accepts, check_restricted_run};
        let g = gamma_abc();
        // L = Γ*aΓ* — "some child of the root is labelled a"; H_L is
        // stackless but not registerless (Example 2.5's discussion).
        let l_dfa = compile_regex(".*a.*", &g).unwrap();
        let program = ChildrenOfRootProgram::new(l_dfa.clone());
        for seed in 0..30 {
            let t = st_trees::generate::random_attachment(&g, 60, 0.4, seed);
            let tags = st_trees::encode::markup_encode(&t);
            let children_word: Vec<usize> =
                t.children(t.root()).map(|c| t.label(c).index()).collect();
            let want = l_dfa.accepts(&children_word);
            assert_eq!(accepts(&program, &tags).unwrap(), want, "seed {seed}");
            assert!(check_restricted_run(&program, &tags).unwrap());
        }
    }

    #[test]
    fn example_2_10_two_consecutive_siblings_registerless() {
        use crate::model::{accepts, TagDfaProgram};
        let g = gamma_abc();
        let a = g.letter("a").unwrap();
        let b = g.letter("b").unwrap();
        let d = two_consecutive_siblings_dfa(a, b, g.len());
        let prog = TagDfaProgram::new(&d);
        for seed in 0..40 {
            let t = st_trees::generate::random_attachment(&g, 50, 0.4, 500 + seed);
            let tags = st_trees::encode::markup_encode(&t);
            let want = t.nodes().any(|v| {
                let kids: Vec<_> = t.children(v).map(|c| t.label(c)).collect();
                kids.windows(2).any(|w| w == [a, b])
            });
            assert_eq!(accepts(&prog, &tags).unwrap(), want, "seed {seed}");
        }
    }

    #[test]
    fn example_2_6_descendant_programs() {
        use crate::model::{accepts, check_restricted_run};
        let g = gamma_abc();
        let a = g.letter("a").unwrap();
        let b = g.letter("b").unwrap();
        let first = FirstAHasBDescendantProgram { a, b };
        let some = SomeAHasBDescendantProgram { a, b };
        for seed in 0..30 {
            let t = st_trees::generate::random_attachment(&g, 60, 0.55, 100 + seed);
            let tags = st_trees::encode::markup_encode(&t);

            // Oracles.
            let first_a = t.nodes().find(|&v| t.label(v) == a);
            let has_b_below = |anchor: st_trees::NodeId| {
                t.nodes().any(|v| {
                    t.label(v) == b && {
                        let mut cur = t.parent(v);
                        loop {
                            match cur {
                                Some(u) if u == anchor => break true,
                                Some(u) => cur = t.parent(u),
                                None => break false,
                            }
                        }
                    }
                })
            };
            let want_first = first_a.is_some_and(has_b_below);
            let want_some = t.nodes().filter(|&v| t.label(v) == a).any(has_b_below);

            assert_eq!(
                accepts(&first, &tags).unwrap(),
                want_first,
                "first, seed {seed}"
            );
            assert_eq!(
                accepts(&some, &tags).unwrap(),
                want_some,
                "some, seed {seed}"
            );
            assert!(check_restricted_run(&first, &tags).unwrap());
            assert!(check_restricted_run(&some, &tags).unwrap());
        }
    }

    #[test]
    fn fig1a_pattern_shape() {
        let p = fig1a_pattern();
        assert_eq!(p.len(), 5);
        let t = p.tree();
        assert_eq!(t.children(t.root()).count(), 2);
    }
}
