//! Fused byte→automaton streaming engine: single-pass evaluation of
//! compiled queries directly over raw XML-lite bytes.
//!
//! The event-based pipeline (`st_trees::xml::Scanner` → tag evaluator)
//! pays, per event, for name re-scanning, label lookup, `Tag`
//! materialization, and a second dispatch inside the evaluator.  This
//! module removes all of it by *composing automata at compile time*:
//!
//! 1. [`TagLexer`] — a byte-level DFA recognizing exactly the tag
//!    skeleton the `Scanner` accepts for a fixed alphabet Γ.  Element
//!    names are compiled into the transition table as a trie, so label
//!    lookup disappears: the state *is* the partially-matched name.
//!    Transitions carry event codes (`open a` / `close a` /
//!    `self-closing a`) instead of producing `Tag` values.
//! 2. [`ByteDfa`] — the product of the lexer with a registerless query
//!    DFA over tags (Lemma 3.5): one dense `state × 256` table whose
//!    single lookup per byte advances both the tokenizer and the query.
//!    While the lexer component sits in its text state the engine skips
//!    to the next `<` with a word-at-a-time scan, so byte-per-byte table
//!    walking is only paid inside tags.
//! 3. A data-parallel path ([`ByteDfa::count_bytes_chunked`] /
//!    [`ByteDfa::select_bytes_chunked`]): because registerless
//!    evaluation is a pure DFA, a document can be cut at candidate tag
//!    starts (`<`), each chunk summarized *speculatively* from the text
//!    state into a state map `q ↦ δ*(q, chunk)` plus per-start-state
//!    selection counts, and the summaries composed sequentially.  The
//!    speculation (that the lexer is in its text state at each cut) is
//!    query-independent and is validated by the previous chunk's end
//!    state; any mismatch falls back to the sequential pass, so the
//!    parallel path is sound on every input.
//! 4. Fused depth-register and stack engines ([`FusedQuery`]): for HAR
//!    queries the lexer drives the Lemma 3.8 register loop directly
//!    (depth counter + register file in locals); for the pushdown
//!    fallback it drives an explicit state stack.  Both evaluate in the
//!    same single pass over bytes, without an intermediate event buffer.
//!
//! Error handling is two-tier: the hot loops only track *whether* the
//! input is malformed (a dedicated error event / flag); on failure the
//! cold path re-runs the `Scanner` to reproduce its exact diagnostic, so
//! fused evaluation reports byte-identical errors to the event pipeline.
//!
//! On top of the composite tables sits the SIMD structural index
//! ([`crate::structural`]): by default every engine strides from tag to
//! tag over a vectorized `<`/`>`/hazard bitmap and only the certified
//! events reach the per-event logic below; any ambiguous span falls back
//! to the scalar lexer, so results are bitwise identical.  The scalar
//! loops in this module are that fallback — and the whole-run path when
//! forced via `ST_FORCE_SCALAR` / [`FusedQuery::set_force_scalar`].

use std::collections::BTreeMap;

use st_automata::{Alphabet, Dfa};
use st_trees::error::TreeError;
use st_trees::xml::Scanner;

use crate::error::CoreError;
use crate::har::{HarMarkupProgram, MAX_CHAIN};
use crate::session::SessionError;
use crate::structural::{
    force_scalar_env, structural_scan, EventSink, NameTable, ScanEnd, ScanStats,
};

/// Converts a panic payload caught at `JoinHandle::join` into
/// [`CoreError::WorkerFailed`].
fn worker_failed(payload: Box<dyn std::any::Any + Send>) -> CoreError {
    let detail = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned());
    CoreError::WorkerFailed { detail }
}

/// Joins every handle (so the scope cannot re-raise an unobserved panic)
/// and either returns all results or the first worker failure.
fn join_all<T>(handles: Vec<std::thread::ScopedJoinHandle<'_, T>>) -> Result<Vec<T>, CoreError> {
    let mut out = Vec::with_capacity(handles.len());
    let mut failed = None;
    for h in handles {
        match h.join() {
            Ok(v) => out.push(v),
            Err(payload) => failed = Some(worker_failed(payload)),
        }
    }
    match failed {
        None => Ok(out),
        Some(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Byte classes (must mirror `st_trees::xml`)
// ---------------------------------------------------------------------------

/// First byte of an element name: `[A-Za-z_:]` (as in the `Scanner`).
#[inline]
pub(crate) fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':'
}

/// Continuation byte of an element name: `[A-Za-z0-9_.:-]`.
#[inline]
pub(crate) fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-')
}

/// Word-at-a-time scan for the next `<` at or after `from`; returns
/// `bytes.len()` if there is none.  This is the memchr-style fast path
/// the engines use while the lexer sits in its text state.
#[inline]
pub(crate) fn find_lt(bytes: &[u8], from: usize) -> usize {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    const NEEDLE: u64 = 0x3C3C_3C3C_3C3C_3C3C; // b'<' broadcast
    let n = bytes.len();
    let mut i = from;
    // Dense markup puts `<` right behind the previous `>`; answer that
    // zero-gap case with one compare before any word setup.
    if i < n && bytes[i] == b'<' {
        return i;
    }
    while i + 8 <= n {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let x = w ^ NEEDLE;
        let hit = x.wrapping_sub(LO) & !x & HI;
        if hit != 0 {
            return i + (hit.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n {
        if bytes[i] == b'<' {
            return i;
        }
        i += 1;
    }
    n
}

// ---------------------------------------------------------------------------
// TagLexer
// ---------------------------------------------------------------------------

/// Lexer state ids fixed across all alphabets.  `TEXT` must be 0 so that
/// composite states `lexer * m + q` of a [`ByteDfa`] satisfy
/// `state < m ⇔ lexer in TEXT` — the test the skip loop uses.
pub(crate) const TEXT: u16 = 0;
const LEX_ERROR: u16 = 1;
pub(crate) const LT: u16 = 2;
const BANG: u16 = 3;
const BANG_DASH: u16 = 4;
const COMMENT: u16 = 5;
const COMMENT_DASH: u16 = 6;
const COMMENT_DASH2: u16 = 7;
const DECL: u16 = 8;
const DECL_DQ: u16 = 9;
const DECL_SQ: u16 = 10;
const CLOSE_START: u16 = 11;
const N_FIXED: usize = 12;

/// Event code on a lexer transition: nothing happened.
pub const EV_NONE: u16 = 0;
/// Event code on a lexer transition: the input is malformed (or uses a
/// label outside Γ).  The error transition enters a sink state, so the
/// first `EV_ERROR` seen is the first offending byte.
pub const EV_ERROR: u16 = u16::MAX;

/// A byte-level DFA over the XML-lite tag skeleton of a fixed alphabet.
///
/// Accepts exactly the documents `st_trees::xml::Scanner` accepts for the
/// same alphabet, and emits the same event stream (verified by tests and
/// the differential property suite).  Event codes on transitions:
/// `0` = none, `1..=2k` = tag index + 1 in the [`st_automata::TagAlphabet`]
/// numbering (open `l` ↦ `l`, close `l` ↦ `k + l`), `2k+1..=3k` =
/// self-closing element for letter `code − 2k − 1` (an open immediately
/// followed by a close), [`EV_ERROR`] = malformed input.
#[derive(Clone, Debug)]
pub struct TagLexer {
    k: usize,
    n_states: usize,
    /// `next[s * 256 + b]`: successor state.
    next: Vec<u16>,
    /// `event[s * 256 + b]`: event code fired by the transition.
    event: Vec<u16>,
    /// Whole-name label lookup for the structural index's certified
    /// classifier (same filtered label set as the tries).
    names: NameTable,
    /// Disables the structural-index fast path for every engine driven
    /// by this lexer (seeded from `ST_FORCE_SCALAR`, overridable per
    /// query / per session).
    force_scalar: bool,
}

/// Row-building helper: states default to the error sink until wired.
struct Rows {
    next: Vec<[u16; 256]>,
    event: Vec<[u16; 256]>,
}

impl Rows {
    fn alloc(&mut self) -> u16 {
        let id = self.next.len() as u16;
        self.next.push([LEX_ERROR; 256]);
        self.event.push([EV_ERROR; 256]);
        id
    }

    fn set(&mut self, s: u16, b: u8, to: u16, ev: u16) {
        self.next[s as usize][b as usize] = to;
        self.event[s as usize][b as usize] = ev;
    }

    fn set_default(&mut self, s: u16, to: u16, ev: u16) {
        self.next[s as usize] = [to; 256];
        self.event[s as usize] = [ev; 256];
    }
}

impl TagLexer {
    /// Compiles the tag-skeleton recognizer for `alphabet`.
    ///
    /// Labels that the `Scanner` could never match (empty, or containing
    /// bytes outside the name grammar) are simply absent from the trie;
    /// documents using them error out, exactly as with the `Scanner`.
    pub fn new(alphabet: &Alphabet) -> TagLexer {
        let k = alphabet.len();
        let labels: Vec<(Vec<u8>, usize)> = alphabet
            .entries()
            .filter(|(_, s)| {
                let b = s.as_bytes();
                !b.is_empty() && is_name_start(b[0]) && b.iter().all(|&c| is_name_byte(c))
            })
            .map(|(l, s)| (s.as_bytes().to_vec(), l.index()))
            .collect();

        let ev_open = |l: usize| (l + 1) as u16;
        let ev_close = |l: usize| (k + l + 1) as u16;
        let ev_self = |l: usize| (2 * k + l + 1) as u16;

        let mut rows = Rows {
            next: Vec::new(),
            event: Vec::new(),
        };
        for _ in 0..N_FIXED {
            rows.alloc();
        }

        // Text: run until '<'.
        rows.set_default(TEXT, TEXT, EV_NONE);
        rows.set(TEXT, b'<', LT, EV_NONE);
        // LEX_ERROR stays an all-error sink (the default row).
        // After '<': comment/declaration openers, closing tags, or a name.
        rows.set(LT, b'!', BANG, EV_NONE);
        rows.set(LT, b'?', DECL, EV_NONE);
        rows.set(LT, b'/', CLOSE_START, EV_NONE);
        // "<!" — a comment only if followed by exactly "--"; anything else
        // is a declaration (quote-aware skip to '>').
        rows.set_default(BANG, DECL, EV_NONE);
        rows.set(BANG, b'-', BANG_DASH, EV_NONE);
        rows.set(BANG, b'"', DECL_DQ, EV_NONE);
        rows.set(BANG, b'\'', DECL_SQ, EV_NONE);
        rows.set(BANG, b'>', TEXT, EV_NONE);
        rows.set_default(BANG_DASH, DECL, EV_NONE);
        rows.set(BANG_DASH, b'-', COMMENT, EV_NONE);
        rows.set(BANG_DASH, b'"', DECL_DQ, EV_NONE);
        rows.set(BANG_DASH, b'\'', DECL_SQ, EV_NONE);
        rows.set(BANG_DASH, b'>', TEXT, EV_NONE);
        // Comments end at the first "-->".
        rows.set_default(COMMENT, COMMENT, EV_NONE);
        rows.set(COMMENT, b'-', COMMENT_DASH, EV_NONE);
        rows.set_default(COMMENT_DASH, COMMENT, EV_NONE);
        rows.set(COMMENT_DASH, b'-', COMMENT_DASH2, EV_NONE);
        rows.set_default(COMMENT_DASH2, COMMENT, EV_NONE);
        rows.set(COMMENT_DASH2, b'-', COMMENT_DASH2, EV_NONE);
        rows.set(COMMENT_DASH2, b'>', TEXT, EV_NONE);
        // Declarations / processing instructions: quote-aware skip.
        rows.set_default(DECL, DECL, EV_NONE);
        rows.set(DECL, b'"', DECL_DQ, EV_NONE);
        rows.set(DECL, b'\'', DECL_SQ, EV_NONE);
        rows.set(DECL, b'>', TEXT, EV_NONE);
        rows.set_default(DECL_DQ, DECL_DQ, EV_NONE);
        rows.set(DECL_DQ, b'"', DECL, EV_NONE);
        rows.set_default(DECL_SQ, DECL_SQ, EV_NONE);
        rows.set(DECL_SQ, b'\'', DECL, EV_NONE);
        // CLOSE_START keeps the error default; close-trie roots are wired
        // below.

        // Name tries: one node per nonempty prefix of a label, shared
        // between labels; separate open and close copies because the
        // events they eventually fire differ.
        let mut open_node: BTreeMap<Vec<u8>, u16> = BTreeMap::new();
        let mut close_node: BTreeMap<Vec<u8>, u16> = BTreeMap::new();
        for (bytes, _) in &labels {
            for len in 1..=bytes.len() {
                let p = bytes[..len].to_vec();
                open_node.entry(p.clone()).or_insert_with(|| rows.alloc());
                close_node.entry(p).or_insert_with(|| rows.alloc());
            }
        }
        let complete: BTreeMap<&[u8], usize> =
            labels.iter().map(|(b, l)| (b.as_slice(), *l)).collect();

        // Attribute-skipping states, per letter.  `AttrStates::plain`
        // models "inside an opening tag, last unquoted byte was not '/'";
        // `slash` the same with a trailing '/' (a '>' here self-closes,
        // matching the Scanner's `bytes[i-1] == b'/'` test).
        struct AttrStates {
            plain: u16,
            slash: u16,
            dq: u16,
            sq: u16,
            close_ws: u16,
        }
        let mut attr: BTreeMap<usize, AttrStates> = BTreeMap::new();
        for (_, l) in &labels {
            attr.entry(*l).or_insert_with(|| AttrStates {
                plain: rows.alloc(),
                slash: rows.alloc(),
                dq: rows.alloc(),
                sq: rows.alloc(),
                close_ws: rows.alloc(),
            });
        }
        for (l, st) in &attr {
            rows.set_default(st.plain, st.plain, EV_NONE);
            rows.set(st.plain, b'/', st.slash, EV_NONE);
            rows.set(st.plain, b'"', st.dq, EV_NONE);
            rows.set(st.plain, b'\'', st.sq, EV_NONE);
            rows.set(st.plain, b'>', TEXT, ev_open(*l));
            rows.set_default(st.slash, st.plain, EV_NONE);
            rows.set(st.slash, b'/', st.slash, EV_NONE);
            rows.set(st.slash, b'"', st.dq, EV_NONE);
            rows.set(st.slash, b'\'', st.sq, EV_NONE);
            rows.set(st.slash, b'>', TEXT, ev_self(*l));
            rows.set_default(st.dq, st.dq, EV_NONE);
            rows.set(st.dq, b'"', st.plain, EV_NONE);
            rows.set_default(st.sq, st.sq, EV_NONE);
            rows.set(st.sq, b'\'', st.plain, EV_NONE);
            // Closing tags allow trailing whitespace before '>'.
            for b in 0..=255u8 {
                if b.is_ascii_whitespace() {
                    rows.set(st.close_ws, b, st.close_ws, EV_NONE);
                }
            }
            rows.set(st.close_ws, b'>', TEXT, ev_close(*l));
        }

        // Wire the tries.  A name byte that extends to another prefix of
        // the label set advances within the trie; any other continuation
        // means the (maximal) name will not be a label, which is an
        // unknown-label error in both engines.
        for (prefix, &node) in &open_node {
            for b in 0..=255u8 {
                if is_name_byte(b) {
                    let mut ext = prefix.clone();
                    ext.push(b);
                    if let Some(&child) = open_node.get(&ext) {
                        rows.set(node, b, child, EV_NONE);
                    }
                } else if let Some(&l) = complete.get(prefix.as_slice()) {
                    let st = &attr[&l];
                    match b {
                        b'>' => rows.set(node, b, TEXT, ev_open(l)),
                        b'/' => rows.set(node, b, st.slash, EV_NONE),
                        b'"' => rows.set(node, b, st.dq, EV_NONE),
                        b'\'' => rows.set(node, b, st.sq, EV_NONE),
                        _ => rows.set(node, b, st.plain, EV_NONE),
                    }
                }
            }
            if prefix.len() == 1 {
                rows.set(LT, prefix[0], node, EV_NONE);
            }
        }
        for (prefix, &node) in &close_node {
            for b in 0..=255u8 {
                if is_name_byte(b) {
                    let mut ext = prefix.clone();
                    ext.push(b);
                    if let Some(&child) = close_node.get(&ext) {
                        rows.set(node, b, child, EV_NONE);
                    }
                } else if let Some(&l) = complete.get(prefix.as_slice()) {
                    if b == b'>' {
                        rows.set(node, b, TEXT, ev_close(l));
                    } else if b.is_ascii_whitespace() {
                        rows.set(node, b, attr[&l].close_ws, EV_NONE);
                    }
                }
            }
            if prefix.len() == 1 {
                rows.set(CLOSE_START, prefix[0], node, EV_NONE);
            }
        }

        let n_states = rows.next.len();
        assert!(
            n_states <= u16::MAX as usize,
            "tag lexer needs {n_states} states; alphabet too large"
        );
        let mut next = Vec::with_capacity(n_states * 256);
        let mut event = Vec::with_capacity(n_states * 256);
        for s in 0..n_states {
            next.extend_from_slice(&rows.next[s]);
            event.extend_from_slice(&rows.event[s]);
        }
        TagLexer {
            k,
            n_states,
            next,
            event,
            names: NameTable::new(&labels),
            force_scalar: force_scalar_env(),
        }
    }

    /// The structural-index name table (complete-label lookup).
    pub(crate) fn names(&self) -> &NameTable {
        &self.names
    }

    /// Whether the scalar path is forced for engines on this lexer.
    pub(crate) fn force_scalar(&self) -> bool {
        self.force_scalar
    }

    pub(crate) fn set_force_scalar(&mut self, on: bool) {
        self.force_scalar = on;
    }

    /// Number of lexer states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// |Γ|.
    pub fn k(&self) -> usize {
        self.k
    }

    /// One byte transition: `(next_state, event_code)`.
    #[inline]
    pub fn step(&self, s: u16, b: u8) -> (u16, u16) {
        let idx = ((s as usize) << 8) | b as usize;
        (self.next[idx], self.event[idx])
    }

    /// Runs the lexer over `bytes`, invoking `on_event` for every fired
    /// event code (`1..=3k`).  Returns `Err(())` if the input is
    /// malformed — deliberately unit, the hot path carries no diagnostic;
    /// callers re-scan with the `Scanner` to reproduce its exact error.
    #[inline]
    #[allow(clippy::result_unit_err)]
    pub fn scan(&self, bytes: &[u8], mut on_event: impl FnMut(u16)) -> Result<(), ()> {
        let n = bytes.len();
        let mut s = TEXT;
        let mut i = 0usize;
        while i < n {
            if s == TEXT {
                i = find_lt(bytes, i);
                if i >= n {
                    break;
                }
            }
            let idx = ((s as usize) << 8) | bytes[i] as usize;
            let ev = self.event[idx];
            s = self.next[idx];
            if ev != EV_NONE {
                if ev == EV_ERROR {
                    return Err(());
                }
                on_event(ev);
            }
            i += 1;
        }
        if s == TEXT {
            Ok(())
        } else {
            Err(())
        }
    }

    /// [`Self::scan`] with a controllable callback: `on_event` returns
    /// `false` to stop the scan early (the guarded engines use this to
    /// bail out the moment a resource budget is breached, before the
    /// evaluator allocates anything proportional to the excess).  An
    /// early stop is `Ok` — the caller owns the breach flag and decides
    /// what it means; `Err(())` still means malformed input.
    #[inline]
    #[allow(clippy::result_unit_err)]
    pub(crate) fn scan_ctl(
        &self,
        bytes: &[u8],
        mut on_event: impl FnMut(u16) -> bool,
    ) -> Result<(), ()> {
        let n = bytes.len();
        let mut s = TEXT;
        let mut i = 0usize;
        while i < n {
            if s == TEXT {
                i = find_lt(bytes, i);
                if i >= n {
                    break;
                }
            }
            let idx = ((s as usize) << 8) | bytes[i] as usize;
            let ev = self.event[idx];
            s = self.next[idx];
            if ev != EV_NONE {
                if ev == EV_ERROR {
                    return Err(());
                }
                if !on_event(ev) {
                    return Ok(());
                }
            }
            i += 1;
        }
        if s == TEXT {
            Ok(())
        } else {
            Err(())
        }
    }
}

/// Tallies structural-index window counts into `obs` under the stable
/// counter names surfaced by `stql --stats`.
pub(crate) fn record_scan_stats(obs: &st_obs::ObsHandle, stats: &ScanStats) {
    if obs.is_enabled() {
        obs.counter("engine_simd_windows").add(stats.simd_windows);
        obs.counter("engine_scalar_fallback_windows")
            .add(stats.fallback_windows);
    }
}

/// Reproduces the `Scanner`'s diagnostic for an input the fused engines
/// rejected (cold path: errors are not the throughput case).
pub(crate) fn rescan_error(bytes: &[u8], alphabet: &Alphabet) -> TreeError {
    for event in Scanner::new(bytes, alphabet) {
        if let Err(e) = event {
            return e;
        }
    }
    // The lexer is byte-exact with the Scanner, so this is unreachable on
    // any input; keep a sane diagnostic rather than a panic in release.
    debug_assert!(false, "fused engine rejected input the Scanner accepts");
    TreeError::Parse {
        position: bytes.len(),
        message: "fused engine rejected input".to_owned(),
    }
}

// ---------------------------------------------------------------------------
// ByteDfa: lexer × registerless query DFA
// ---------------------------------------------------------------------------

/// Flag bit: the transition opened a node.
pub const FLAG_OPEN: u8 = 1;
/// Flag bit: the node opened by the transition is selected.
pub const FLAG_SELECTED: u8 = 2;
/// Flag bit: the transition detected malformed input.
pub const FLAG_ERROR: u8 = 4;
/// Flag bit: the transition closed a node (set together with
/// [`FLAG_OPEN`] on self-closing elements).  The resource-guarded loops
/// use it to keep a depth counter without a second table.
pub const FLAG_CLOSE: u8 = 8;

/// The fully fused byte engine for registerless (Lemma 3.5) queries: the
/// product of a [`TagLexer`] with a query DFA over the tag alphabet,
/// tabulated densely as `state × 256` transitions plus per-transition
/// flags.  One table lookup per byte tokenizes *and* evaluates.
pub struct ByteDfa {
    /// Query-DFA state count; composite states are `lexer * m + q`.
    pub(crate) m: usize,
    k: usize,
    pub(crate) start: u16,
    /// `table[s * 256 + b]`: successor state in the low 16 bits, the
    /// transition's flags in bits 16.. — one cache load per byte.  Padded
    /// to a power-of-two length so the hot loops can index through a mask,
    /// which lets the compiler drop the per-byte bounds check.
    pub(crate) table: Vec<u32>,
    lexer: TagLexer,
    /// Query transitions `qnext[q * 2k + t]`, kept factored for the
    /// chunk-summary (all-states) pass.
    pub(crate) qnext: Vec<u16>,
    pub(crate) accepting: Vec<bool>,
    pub(crate) alphabet: Alphabet,
    /// Row stride of [`Self::evtab`]: `3k + 1` (event codes are
    /// `1..=3k`; slot 0 is padding).
    estride: usize,
    /// Packed per-*event* table for the structural-index stride:
    /// `evtab[q * estride + ev]` holds the premultiplied successor row
    /// offset (`q' * estride`, low 15 bits) and, in bit 15, whether the
    /// event's open is selected (for self-closing events, selection of
    /// the opened node).  One dependent load per certified tag instead
    /// of one per byte.  `None` when `m * estride` exceeds the 15-bit
    /// offset budget — the stride then decodes events through `qnext`.
    evtab: Option<Vec<u16>>,
}

/// Speculative summary of one chunk, computed assuming the lexer starts
/// in its text state at the chunk boundary (see module docs).
struct ChunkSummary {
    /// Lexer state after the chunk (validates the next chunk's
    /// speculation: it must be `TEXT`).
    end_lex: u16,
    /// `qmap[q]`: query state after the chunk when entering in `q`.
    qmap: Vec<u16>,
    /// `counts[q]`: nodes selected within the chunk when entering in `q`.
    counts: Vec<usize>,
    /// Nodes opened in the chunk (query-state independent).
    nodes: usize,
    /// The lexer hit an error transition.
    err: bool,
}

/// Sink for the packed-evtab count.  A struct with by-value scalar
/// state rather than a closure: the certified sweep is monomorphized
/// per sink and inlines [`EventSink::event`] into its loop, where a
/// struct behind one `&mut` register-promotes `qoff`/`count` across
/// iterations — closure-captured `&mut` locals round-trip through
/// memory once per event, which doubles the per-tag cost.  The per-tag
/// work is then the one dependent `evtab` load it is on paper, and the
/// out-of-order core overlaps it with the next tag's certification.
struct EvtabCount<'a> {
    evtab: &'a [u16],
    qoff: usize,
    count: usize,
}

impl EventSink for EvtabCount<'_> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let e = self.evtab[self.qoff + ev as usize];
        self.count += (e >> 15) as usize;
        self.qoff = (e & 0x7FFF) as usize;
        true
    }
}

/// [`EvtabCount`]'s twin over the factored tables, for engines whose
/// packed offsets don't fit in 15 bits.
struct StepCount<'a> {
    dfa: &'a ByteDfa,
    q: usize,
    count: usize,
}

impl EventSink for StepCount<'_> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let (q2, _, sel) = self.dfa.event_step(self.q, ev);
        self.q = q2;
        self.count += sel as usize;
        true
    }
}

/// Batch-draining sink for the packed-evtab select (document-order node
/// ids of selected opens).
struct EvtabSelect<'a> {
    evtab: &'a [u16],
    k: u16,
    k2: u16,
    qoff: usize,
    out: Vec<usize>,
    node: usize,
}

impl EventSink for EvtabSelect<'_> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let e = self.evtab[self.qoff + ev as usize];
        if e >> 15 != 0 {
            self.out.push(self.node);
        }
        self.node += (ev <= self.k || ev > self.k2) as usize;
        self.qoff = (e & 0x7FFF) as usize;
        true
    }
}

/// [`EvtabSelect`]'s twin over the factored tables.
struct StepSelect<'a> {
    dfa: &'a ByteDfa,
    q: usize,
    out: Vec<usize>,
    node: usize,
}

impl EventSink for StepSelect<'_> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let (q2, opened, sel) = self.dfa.event_step(self.q, ev);
        self.q = q2;
        if sel {
            self.out.push(self.node);
        }
        self.node += opened as usize;
        true
    }
}

/// Depth-guarded count over the packed evtab: open/close are decoded
/// branchlessly from the event number alone (`ev ≤ k` open, `ev > k`
/// close, `ev > 2k` both), and the two breach compares are
/// never-taken branches, so the guard costs two predictable compares on
/// top of [`EvtabCount`]'s one dependent load.  Check order matches the
/// scalar flag dispatch (open check before the selection tally, close
/// check after) so a breach stops at the same event.
struct GuardedEvtabCount<'a> {
    evtab: &'a [u16],
    k: u16,
    k2: u16,
    qoff: usize,
    count: usize,
    depth: i64,
    max_depth: i64,
    min_depth: i64,
}

impl EventSink for GuardedEvtabCount<'_> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let e = self.evtab[self.qoff + ev as usize];
        self.count += (e >> 15) as usize;
        self.qoff = (e & 0x7FFF) as usize;
        let opened = (ev <= self.k) | (ev > self.k2);
        // Two never-taken branches (cheaper than or-ing the compares
        // into one): a breach only has to be *detected* — the caller
        // replays the document cold for the exact diagnostic — so the
        // stop may trail the scalar twin's by part of an event as long
        // as no breach is ever missed; `peak` covers the self-closing
        // transient.
        let peak = self.depth + i64::from(opened);
        if peak > self.max_depth {
            return false;
        }
        self.depth = peak - i64::from(ev > self.k);
        if self.depth < self.min_depth {
            return false;
        }
        true
    }
}

/// [`GuardedEvtabCount`]'s select twin.
struct GuardedEvtabSelect<'a> {
    evtab: &'a [u16],
    k: u16,
    k2: u16,
    qoff: usize,
    out: Vec<usize>,
    node: usize,
    depth: i64,
    max_depth: i64,
    min_depth: i64,
}

impl EventSink for GuardedEvtabSelect<'_> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let e = self.evtab[self.qoff + ev as usize];
        if e >> 15 != 0 {
            self.out.push(self.node);
        }
        self.qoff = (e & 0x7FFF) as usize;
        let opened = (ev <= self.k) | (ev > self.k2);
        self.node += opened as usize;
        // See `GuardedEvtabCount`: detection-only, never-taken branches.
        let peak = self.depth + i64::from(opened);
        if peak > self.max_depth {
            return false;
        }
        self.depth = peak - i64::from(ev > self.k);
        if self.depth < self.min_depth {
            return false;
        }
        true
    }
}

/// [`GuardedEvtabCount`] over the factored tables, for engines whose
/// packed offsets don't fit in 15 bits.
struct GuardedCount<'a> {
    dfa: &'a ByteDfa,
    q: usize,
    count: usize,
    depth: i64,
    max_depth: i64,
    min_depth: i64,
}

impl EventSink for GuardedCount<'_> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let (q2, opened, sel) = self.dfa.event_step(self.q, ev);
        self.q = q2;
        if opened {
            self.depth += 1;
            if self.depth > self.max_depth {
                return false;
            }
        }
        self.count += sel as usize;
        if ev as usize > self.dfa.k {
            self.depth -= 1;
            if self.depth < self.min_depth {
                return false;
            }
        }
        true
    }
}

/// [`GuardedCount`]'s select twin.
struct GuardedSelect<'a> {
    dfa: &'a ByteDfa,
    q: usize,
    out: Vec<usize>,
    node: usize,
    depth: i64,
    max_depth: i64,
    min_depth: i64,
}

impl EventSink for GuardedSelect<'_> {
    #[inline]
    fn event(&mut self, ev: u16, _pos: usize) -> bool {
        let (q2, opened, sel) = self.dfa.event_step(self.q, ev);
        self.q = q2;
        if opened {
            self.depth += 1;
            if self.depth > self.max_depth {
                return false;
            }
        }
        if sel {
            self.out.push(self.node);
        }
        self.node += opened as usize;
        if ev as usize > self.dfa.k {
            self.depth -= 1;
            if self.depth < self.min_depth {
                return false;
            }
        }
        true
    }
}

impl ByteDfa {
    /// Composes the tag lexer for `alphabet` with `dfa`, a query DFA over
    /// the tag alphabet Γ ∪ Γ̄ (`2·|Γ|` letters, open `l` ↦ `l`, close
    /// `l` ↦ `|Γ| + l`) with pre-selection semantics — exactly what
    /// `registerless::compile_query_markup` produces.
    ///
    /// # Errors
    ///
    /// [`CoreError::MalformedTable`] if the alphabet does not match the
    /// DFA, and [`CoreError::FusedTooLarge`] if the composite table would
    /// exceed the `u16` state budget.
    pub fn new(dfa: &Dfa, alphabet: &Alphabet) -> Result<ByteDfa, CoreError> {
        let k = alphabet.len();
        if dfa.n_letters() != 2 * k {
            return Err(CoreError::MalformedTable {
                detail: format!(
                    "query DFA has {} letters; the tag alphabet of Γ with |Γ| = {k} needs {}",
                    dfa.n_letters(),
                    2 * k
                ),
            });
        }
        let lexer = TagLexer::new(alphabet);
        let m = dfa.n_states();
        let n_composite = lexer.n_states() * m;
        if n_composite > u16::MAX as usize + 1 {
            return Err(CoreError::FusedTooLarge {
                states: n_composite,
            });
        }

        let qnext: Vec<u16> = (0..m)
            .flat_map(|q| (0..2 * k).map(move |t| (q, t)))
            .map(|(q, t)| dfa.step(q, t) as u16)
            .collect();
        let accepting: Vec<bool> = (0..m).map(|q| dfa.is_accepting(q)).collect();

        // Padding entries are unreachable (states stay < n_composite);
        // fill them with error transitions so any bug fails loudly.
        let mut table = vec![
            ((FLAG_ERROR as u32) << 16) | (LEX_ERROR as usize * m) as u32;
            (n_composite * 256).next_power_of_two()
        ];
        for lex in 0..lexer.n_states() {
            for q in 0..m {
                let s = lex * m + q;
                for b in 0..=255u8 {
                    let (lex2, ev) = lexer.step(lex as u16, b);
                    let (q2, f) = match ev {
                        EV_NONE => (q, 0u8),
                        EV_ERROR => (0, FLAG_ERROR),
                        ev if (ev as usize) <= 2 * k => {
                            let t = ev as usize - 1;
                            let q2 = qnext[q * 2 * k + t] as usize;
                            let f = if t < k {
                                FLAG_OPEN | if accepting[q2] { FLAG_SELECTED } else { 0 }
                            } else {
                                FLAG_CLOSE
                            };
                            (q2, f)
                        }
                        ev => {
                            // Self-closing: open then close in one byte.
                            let l = ev as usize - 1 - 2 * k;
                            let q1 = qnext[q * 2 * k + l] as usize;
                            let q2 = qnext[q1 * 2 * k + k + l] as usize;
                            let f = FLAG_OPEN
                                | FLAG_CLOSE
                                | if accepting[q1] { FLAG_SELECTED } else { 0 };
                            (q2, f)
                        }
                    };
                    let idx = s * 256 + b as usize;
                    table[idx] = ((f as u32) << 16) | (lex2 as usize * m + q2) as u32;
                }
            }
        }
        let estride = 3 * k + 1;
        let evtab = if m * estride <= 1 << 15 {
            let mut t = vec![0u16; m * estride];
            for q in 0..m {
                for l in 0..k {
                    let qo = qnext[q * 2 * k + l] as usize;
                    let qc = qnext[q * 2 * k + k + l] as usize;
                    let qs = qnext[qo * 2 * k + k + l] as usize;
                    let sel = (accepting[qo] as u16) << 15;
                    t[q * estride + 1 + l] = (qo * estride) as u16 | sel;
                    t[q * estride + 1 + k + l] = (qc * estride) as u16;
                    t[q * estride + 1 + 2 * k + l] = (qs * estride) as u16 | sel;
                }
            }
            Some(t)
        } else {
            None
        };
        Ok(ByteDfa {
            m,
            k,
            start: dfa.init() as u16, // TEXT * m + init
            table,
            lexer,
            qnext,
            accepting,
            alphabet: alphabet.clone(),
            estride,
            evtab,
        })
    }

    /// Applies a lexer event code (`1..=3k`) to a query state:
    /// `(next_q, opened, open_selected)`.  The factored-table twin of
    /// the packed [`Self::evtab`] row, used where the packed offsets
    /// don't fit or extra per-event state (depth guards) is tracked
    /// anyway.
    #[inline]
    pub(crate) fn event_step(&self, q: usize, ev: u16) -> (usize, bool, bool) {
        let k = self.k;
        let k2 = 2 * k;
        let ev = ev as usize;
        if ev <= k2 {
            let t = ev - 1;
            let q2 = self.qnext[q * k2 + t] as usize;
            if t < k {
                (q2, true, self.accepting[q2])
            } else {
                (q2, false, false)
            }
        } else {
            let l = ev - 1 - k2;
            let q1 = self.qnext[q * k2 + l] as usize;
            let q2 = self.qnext[q1 * k2 + k + l] as usize;
            (q2, true, self.accepting[q1])
        }
    }

    /// |Γ|.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Composite state count (`lexer states × query states`).
    pub fn n_states(&self) -> usize {
        self.lexer.n_states() * self.m
    }

    /// The underlying tag lexer.
    pub fn lexer(&self) -> &TagLexer {
        &self.lexer
    }

    /// Forces (or re-enables) the scalar byte path for this engine; see
    /// [`FusedQuery::set_force_scalar`].
    pub fn set_force_scalar(&mut self, on: bool) {
        self.lexer.set_force_scalar(on);
    }

    /// Counts selected nodes in a single pass over `bytes`: the
    /// structural-index stride by default, the scalar composite-table
    /// loop when the scalar path is forced.
    ///
    /// # Errors
    ///
    /// The `Scanner`'s diagnostic if the document is malformed.
    pub fn count_bytes(&self, bytes: &[u8]) -> Result<usize, TreeError> {
        self.count_bytes_opts(bytes, &mut ScanStats::default(), false)
    }

    /// Dispatches between the indexed stride and the scalar loop;
    /// `force` is the caller's (per-run) scalar override, OR-ed with the
    /// engine's own flag.
    pub(crate) fn count_bytes_opts(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
        force: bool,
    ) -> Result<usize, TreeError> {
        if force || self.lexer.force_scalar {
            self.count_bytes_scalar(bytes)
        } else {
            self.count_bytes_indexed(bytes, stats)
        }
    }

    /// Runs the structural scan with a sink that only counts events —
    /// the E22 probe that prices certification + striding without any
    /// query-table work.
    #[doc(hidden)]
    #[inline(never)]
    pub fn probe_events_noop(&self, bytes: &[u8]) -> usize {
        let mut n = 0usize;
        let mut stats = ScanStats::default();
        structural_scan(&self.lexer, bytes, TEXT, &mut stats, &mut |_, _| {
            n += 1;
            true
        });
        n
    }

    /// The indexed two-pass count: certified tags advance the query
    /// through one packed `evtab` load per *tag* (or the factored
    /// tables when the packed offsets don't fit).
    #[inline(never)]
    fn count_bytes_indexed(&self, bytes: &[u8], stats: &mut ScanStats) -> Result<usize, TreeError> {
        let (count, end) = if let Some(evtab) = self.evtab.as_deref() {
            let mut sink = EvtabCount {
                evtab,
                qoff: self.start as usize * self.estride,
                count: 0,
            };
            let end = structural_scan(&self.lexer, bytes, TEXT, stats, &mut sink);
            (sink.count, end)
        } else {
            let mut sink = StepCount {
                dfa: self,
                q: self.start as usize,
                count: 0,
            };
            let end = structural_scan(&self.lexer, bytes, TEXT, stats, &mut sink);
            (sink.count, end)
        };
        match end {
            ScanEnd::Complete { lex } if lex == TEXT => Ok(count),
            _ => Err(rescan_error(bytes, &self.alphabet)),
        }
    }

    /// The per-byte composite-table count (the forced-scalar path and
    /// the reference the structural index is differentially tested
    /// against).
    #[doc(hidden)]
    pub fn count_bytes_scalar(&self, bytes: &[u8]) -> Result<usize, TreeError> {
        let n = bytes.len();
        let m = self.m;
        let table = self.table.as_slice();
        let mask = table.len() - 1;
        let mut s = self.start as usize;
        let mut count = 0usize;
        let mut i = 0usize;
        while i < n {
            if s < m {
                i = find_lt(bytes, i);
                if i >= n {
                    break;
                }
                // TEXT --'<'--> LT (lexer state 2) with no event: a
                // constant composite step, no table load needed.  A
                // trailing `<` leaves `s ≥ m`, caught after the loop.
                s += LT as usize * m;
                i += 1;
                if i >= n {
                    break;
                }
            }
            let p = table[((s << 8) | bytes[i] as usize) & mask];
            s = (p & 0xFFFF) as usize;
            if p >> 16 != 0 {
                let f = (p >> 16) as u8;
                if f & FLAG_ERROR != 0 {
                    return Err(rescan_error(bytes, &self.alphabet));
                }
                count += (f >> 1) as usize & 1;
            }
            i += 1;
        }
        if s < m {
            Ok(count)
        } else {
            Err(rescan_error(bytes, &self.alphabet))
        }
    }

    /// [`Self::count_bytes`] with the depth/imbalance budgets tracked
    /// inline from the open/close flags the composite table already
    /// carries — the O(1)-state engine has no depth of its own, so the
    /// guard rides in the flag-dispatch branch that only event bytes
    /// take.  Returns `None` on a breach *or* a parse error; the caller
    /// re-runs the windowed session cold to reproduce the exact
    /// diagnostic (neither is the throughput case).  `inline(never)`
    /// keeps the loop out of the caller's multi-backend dispatch body.
    pub(crate) fn count_bytes_guarded(
        &self,
        bytes: &[u8],
        max_depth: i64,
        min_depth: i64,
        stats: &mut ScanStats,
        force: bool,
    ) -> Option<usize> {
        if force || self.lexer.force_scalar {
            self.count_bytes_guarded_scalar(bytes, max_depth, min_depth)
        } else {
            self.count_bytes_guarded_indexed(bytes, max_depth, min_depth, stats)
        }
    }

    /// Indexed guarded count: the depth guard rides per event exactly as
    /// in the scalar flag-dispatch branch (open check before the
    /// selection tally, close check after), so breach detection happens
    /// at the same event.
    #[inline(never)]
    fn count_bytes_guarded_indexed(
        &self,
        bytes: &[u8],
        max_depth: i64,
        min_depth: i64,
        stats: &mut ScanStats,
    ) -> Option<usize> {
        let (count, end) = if let Some(evtab) = self.evtab.as_deref() {
            let mut sink = GuardedEvtabCount {
                evtab,
                k: self.k as u16,
                k2: 2 * self.k as u16,
                qoff: self.start as usize * self.estride,
                count: 0,
                depth: 0,
                max_depth,
                min_depth,
            };
            let end = structural_scan(&self.lexer, bytes, TEXT, stats, &mut sink);
            (sink.count, end)
        } else {
            let mut sink = GuardedCount {
                dfa: self,
                q: self.start as usize,
                count: 0,
                depth: 0,
                max_depth,
                min_depth,
            };
            let end = structural_scan(&self.lexer, bytes, TEXT, stats, &mut sink);
            (sink.count, end)
        };
        match end {
            ScanEnd::Complete { lex } if lex == TEXT => Some(count),
            _ => None,
        }
    }

    #[inline(never)]
    fn count_bytes_guarded_scalar(
        &self,
        bytes: &[u8],
        max_depth: i64,
        min_depth: i64,
    ) -> Option<usize> {
        let n = bytes.len();
        let m = self.m;
        let table = self.table.as_slice();
        let mask = table.len() - 1;
        let mut s = self.start as usize;
        let mut count = 0usize;
        let mut depth: i64 = 0;
        let mut i = 0usize;
        while i < n {
            if s < m {
                i = find_lt(bytes, i);
                if i >= n {
                    break;
                }
                s += LT as usize * m;
                i += 1;
                if i >= n {
                    break;
                }
            }
            let p = table[((s << 8) | bytes[i] as usize) & mask];
            s = (p & 0xFFFF) as usize;
            if p >> 16 != 0 {
                let f = (p >> 16) as u8;
                if f & FLAG_ERROR != 0 {
                    return None;
                }
                if f & FLAG_OPEN != 0 {
                    depth += 1;
                    if depth > max_depth {
                        return None;
                    }
                }
                count += (f >> 1) as usize & 1;
                if f & FLAG_CLOSE != 0 {
                    depth -= 1;
                    if depth < min_depth {
                        return None;
                    }
                }
            }
            i += 1;
        }
        if s < m {
            Some(count)
        } else {
            None
        }
    }

    /// Guarded variant of [`Self::select_bytes`]; see
    /// [`Self::count_bytes_guarded`] for the contract.
    pub(crate) fn select_bytes_guarded(
        &self,
        bytes: &[u8],
        max_depth: i64,
        min_depth: i64,
        stats: &mut ScanStats,
        force: bool,
    ) -> Option<Vec<usize>> {
        if force || self.lexer.force_scalar {
            self.select_bytes_guarded_scalar(bytes, max_depth, min_depth)
        } else {
            self.select_bytes_guarded_indexed(bytes, max_depth, min_depth, stats)
        }
    }

    #[inline(never)]
    fn select_bytes_guarded_indexed(
        &self,
        bytes: &[u8],
        max_depth: i64,
        min_depth: i64,
        stats: &mut ScanStats,
    ) -> Option<Vec<usize>> {
        let (out, end) = if let Some(evtab) = self.evtab.as_deref() {
            let mut sink = GuardedEvtabSelect {
                evtab,
                k: self.k as u16,
                k2: 2 * self.k as u16,
                qoff: self.start as usize * self.estride,
                out: Vec::new(),
                node: 0,
                depth: 0,
                max_depth,
                min_depth,
            };
            let end = structural_scan(&self.lexer, bytes, TEXT, stats, &mut sink);
            (sink.out, end)
        } else {
            let mut sink = GuardedSelect {
                dfa: self,
                q: self.start as usize,
                out: Vec::new(),
                node: 0,
                depth: 0,
                max_depth,
                min_depth,
            };
            let end = structural_scan(&self.lexer, bytes, TEXT, stats, &mut sink);
            (sink.out, end)
        };
        match end {
            ScanEnd::Complete { lex } if lex == TEXT => Some(out),
            _ => None,
        }
    }

    #[inline(never)]
    fn select_bytes_guarded_scalar(
        &self,
        bytes: &[u8],
        max_depth: i64,
        min_depth: i64,
    ) -> Option<Vec<usize>> {
        let n = bytes.len();
        let m = self.m;
        let table = self.table.as_slice();
        let mask = table.len() - 1;
        let mut s = self.start as usize;
        let mut out = Vec::new();
        let mut node = 0usize;
        let mut depth: i64 = 0;
        let mut i = 0usize;
        while i < n {
            if s < m {
                i = find_lt(bytes, i);
                if i >= n {
                    break;
                }
                s += LT as usize * m;
                i += 1;
                if i >= n {
                    break;
                }
            }
            let p = table[((s << 8) | bytes[i] as usize) & mask];
            s = (p & 0xFFFF) as usize;
            if p >> 16 != 0 {
                let f = (p >> 16) as u8;
                if f & FLAG_ERROR != 0 {
                    return None;
                }
                if f & FLAG_OPEN != 0 {
                    depth += 1;
                    if depth > max_depth {
                        return None;
                    }
                }
                if f & FLAG_SELECTED != 0 {
                    out.push(node);
                }
                node += f as usize & 1;
                if f & FLAG_CLOSE != 0 {
                    depth -= 1;
                    if depth < min_depth {
                        return None;
                    }
                }
            }
            i += 1;
        }
        if s < m {
            Some(out)
        } else {
            None
        }
    }

    /// Document-order ids of selected nodes, in a single pass over
    /// `bytes` (pre-selection semantics, identical to
    /// [`crate::planner::CompiledQuery::select`] over the scanned events).
    /// Strides the structural index unless the scalar path is forced.
    ///
    /// # Errors
    ///
    /// The `Scanner`'s diagnostic if the document is malformed.
    pub fn select_bytes(&self, bytes: &[u8]) -> Result<Vec<usize>, TreeError> {
        self.select_bytes_opts(bytes, &mut ScanStats::default(), false)
    }

    pub(crate) fn select_bytes_opts(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
        force: bool,
    ) -> Result<Vec<usize>, TreeError> {
        if force || self.lexer.force_scalar {
            self.select_bytes_scalar(bytes)
        } else {
            self.select_bytes_indexed(bytes, stats)
        }
    }

    #[inline(never)]
    fn select_bytes_indexed(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
    ) -> Result<Vec<usize>, TreeError> {
        let (out, end) = if let Some(evtab) = self.evtab.as_deref() {
            let mut sink = EvtabSelect {
                evtab,
                k: self.k as u16,
                k2: 2 * self.k as u16,
                qoff: self.start as usize * self.estride,
                out: Vec::new(),
                node: 0,
            };
            let end = structural_scan(&self.lexer, bytes, TEXT, stats, &mut sink);
            (sink.out, end)
        } else {
            let mut sink = StepSelect {
                dfa: self,
                q: self.start as usize,
                out: Vec::new(),
                node: 0,
            };
            let end = structural_scan(&self.lexer, bytes, TEXT, stats, &mut sink);
            (sink.out, end)
        };
        match end {
            ScanEnd::Complete { lex } if lex == TEXT => Ok(out),
            _ => Err(rescan_error(bytes, &self.alphabet)),
        }
    }

    /// Scalar twin of [`Self::select_bytes`]; see
    /// [`Self::count_bytes_scalar`].
    #[doc(hidden)]
    pub fn select_bytes_scalar(&self, bytes: &[u8]) -> Result<Vec<usize>, TreeError> {
        let n = bytes.len();
        let m = self.m;
        let table = self.table.as_slice();
        let mask = table.len() - 1;
        let mut s = self.start as usize;
        let mut out = Vec::new();
        let mut node = 0usize;
        let mut i = 0usize;
        while i < n {
            if s < m {
                i = find_lt(bytes, i);
                if i >= n {
                    break;
                }
                s += LT as usize * m;
                i += 1;
                if i >= n {
                    break;
                }
            }
            let p = table[((s << 8) | bytes[i] as usize) & mask];
            s = (p & 0xFFFF) as usize;
            if p >> 16 != 0 {
                let f = (p >> 16) as u8;
                if f & FLAG_ERROR != 0 {
                    return Err(rescan_error(bytes, &self.alphabet));
                }
                if f & FLAG_SELECTED != 0 {
                    out.push(node);
                }
                node += f as usize & 1;
            }
            i += 1;
        }
        if s < m {
            Ok(out)
        } else {
            Err(rescan_error(bytes, &self.alphabet))
        }
    }

    /// Chunk boundaries for the data-parallel path: cuts at `<` bytes,
    /// roughly equal-sized.  `None` when splitting is not worthwhile.
    fn chunk_plan(&self, bytes: &[u8], n_threads: usize) -> Option<Vec<usize>> {
        const MIN_CHUNK: usize = 4 << 10;
        if n_threads < 2 || bytes.len() < 2 * MIN_CHUNK {
            return None;
        }
        let threads = n_threads.min(bytes.len() / MIN_CHUNK).max(2);
        let size = bytes.len() / threads;
        let mut cuts = vec![0usize];
        for c in 1..threads {
            let cut = find_lt(bytes, c * size);
            if cut > *cuts.last().unwrap() && cut < bytes.len() {
                cuts.push(cut);
            }
        }
        cuts.push(bytes.len());
        if cuts.len() < 3 {
            None
        } else {
            Some(cuts)
        }
    }

    /// Summarizes one chunk speculatively: the lexer runs once from its
    /// text state, while the query component is simulated from *every*
    /// state at once (`qmap`).  Sound to compose because registerless
    /// evaluation is a pure DFA and the lexer is query-independent.
    /// Certified tags reach the O(m) per-event simulation straight from
    /// the structural index (scalar when forced).
    fn summarize_chunk(&self, chunk: &[u8]) -> ChunkSummary {
        let m = self.m;
        let k = self.k;
        let k2 = 2 * k;
        let mut qmap: Vec<u16> = (0..m as u16).collect();
        let mut counts = vec![0usize; m];
        let mut nodes = 0usize;
        let mut err = false;
        let mut end_lex = TEXT;

        let mut on_event = |ev: u16| {
            let (open_l, close_t) = if (ev as usize) <= 2 * k {
                let t = ev as usize - 1;
                if t < k {
                    (Some(t), None)
                } else {
                    (None, Some(t))
                }
            } else {
                let l = ev as usize - 1 - 2 * k;
                (Some(l), Some(k + l))
            };
            if let Some(l) = open_l {
                nodes += 1;
                for q in 0..m {
                    let q2 = self.qnext[qmap[q] as usize * k2 + l];
                    qmap[q] = q2;
                    counts[q] += self.accepting[q2 as usize] as usize;
                }
            }
            if let Some(t) = close_t {
                for q in qmap.iter_mut() {
                    *q = self.qnext[*q as usize * k2 + t];
                }
            }
        };

        if self.lexer.force_scalar {
            let mut lex = TEXT;
            let n = chunk.len();
            let mut i = 0usize;
            'bytes: while i < n {
                if lex == TEXT {
                    i = find_lt(chunk, i);
                    if i >= n {
                        break;
                    }
                }
                let (lex2, ev) = self.lexer.step(lex, chunk[i]);
                lex = lex2;
                if ev != EV_NONE {
                    if ev == EV_ERROR {
                        err = true;
                        break 'bytes;
                    }
                    on_event(ev);
                }
                i += 1;
            }
            if !err {
                end_lex = lex;
            }
        } else {
            let mut stats = ScanStats::default();
            match structural_scan(&self.lexer, chunk, TEXT, &mut stats, &mut |ev, _| {
                on_event(ev);
                true
            }) {
                ScanEnd::Complete { lex } => end_lex = lex,
                ScanEnd::Error { .. } => err = true,
                ScanEnd::Stopped => unreachable!("summary sink never stops"),
            }
        }
        ChunkSummary {
            end_lex,
            qmap,
            counts,
            nodes,
            err,
        }
    }

    /// Runs all chunk summaries on scoped threads.  A worker panic is
    /// caught at the join and surfaces as [`CoreError::WorkerFailed`];
    /// it never unwinds through (or aborts) the caller.
    fn summarize_parallel(
        &self,
        bytes: &[u8],
        cuts: &[usize],
    ) -> Result<Vec<ChunkSummary>, CoreError> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = cuts
                .windows(2)
                .map(|w| {
                    let chunk = &bytes[w[0]..w[1]];
                    scope.spawn(move || self.summarize_chunk(chunk))
                })
                .collect();
            join_all(handles)
        })
    }

    /// Validates a chain of chunk summaries: every chunk must finish with
    /// the lexer back in text state (which certifies the next chunk's
    /// speculative text-state start) and none may have hit an error.
    /// Returns the entry query state per chunk and the node-id offset per
    /// chunk on success.
    fn compose(&self, summaries: &[ChunkSummary]) -> Option<(Vec<u16>, Vec<usize>)> {
        let mut q = self.start; // == query init (TEXT is lexer state 0)
        let mut node_off = 0usize;
        let mut entry_q = Vec::with_capacity(summaries.len());
        let mut offsets = Vec::with_capacity(summaries.len());
        for s in summaries {
            if s.err || s.end_lex != TEXT {
                return None;
            }
            entry_q.push(q);
            offsets.push(node_off);
            node_off += s.nodes;
            q = s.qmap[q as usize];
        }
        Some((entry_q, offsets))
    }

    /// Data-parallel count over up to `n_threads` chunks; falls back to
    /// [`Self::count_bytes`] whenever splitting is unprofitable or the
    /// chunk speculation fails (e.g. a cut landed inside a comment or a
    /// quoted attribute), so the result is always exact.
    ///
    /// # Errors
    ///
    /// [`SessionError::Parse`] with the `Scanner`'s diagnostic if the
    /// document is malformed; [`SessionError::Engine`] (worker failure)
    /// if a chunk worker panicked — a worker panic is an engine bug, so
    /// it is *not* papered over by the sequential fallback.
    pub fn count_bytes_chunked(
        &self,
        bytes: &[u8],
        n_threads: usize,
    ) -> Result<usize, SessionError> {
        let Some(cuts) = self.chunk_plan(bytes, n_threads) else {
            return self.count_bytes(bytes).map_err(SessionError::Parse);
        };
        match self.count_with_cuts(bytes, &cuts)? {
            Some(n) => Ok(n),
            None => self.count_bytes(bytes).map_err(SessionError::Parse),
        }
    }

    /// Speculative count over an explicit cut vector; `Ok(None)` when the
    /// summaries fail to certify (caller falls back to sequential).
    fn count_with_cuts(&self, bytes: &[u8], cuts: &[usize]) -> Result<Option<usize>, CoreError> {
        let summaries = self.summarize_parallel(bytes, cuts)?;
        let Some((entry_q, _)) = self.compose(&summaries) else {
            return Ok(None);
        };
        Ok(Some(
            summaries
                .iter()
                .zip(&entry_q)
                .map(|(s, &q)| s.counts[q as usize])
                .sum(),
        ))
    }

    /// Normalizes caller-supplied interior cut positions into a full cut
    /// vector `[0, c₁, …, len]`: entries that are out of range, duplicate,
    /// or non-monotone are dropped.  `None` when no interior cut survives
    /// (the input would be a single chunk).
    fn normalize_cuts(len: usize, interior: &[usize]) -> Option<Vec<usize>> {
        let mut cuts = vec![0usize];
        for &c in interior {
            if c > *cuts.last().unwrap() && c < len {
                cuts.push(c);
            }
        }
        cuts.push(len);
        if cuts.len() < 3 {
            None
        } else {
            Some(cuts)
        }
    }

    /// Like [`Self::count_bytes_chunked`] but with caller-chosen interior
    /// cut positions (byte offsets), so harnesses can force boundaries
    /// mid-tag, mid-text, or mid-quote.  Speculation that cannot be
    /// certified falls back to the sequential path, so the result is exact
    /// for *any* cut vector.
    ///
    /// # Errors
    ///
    /// As for [`Self::count_bytes_chunked`].
    pub fn count_bytes_chunked_at(
        &self,
        bytes: &[u8],
        interior_cuts: &[usize],
    ) -> Result<usize, SessionError> {
        let Some(cuts) = Self::normalize_cuts(bytes.len(), interior_cuts) else {
            return self.count_bytes(bytes).map_err(SessionError::Parse);
        };
        match self.count_with_cuts(bytes, &cuts)? {
            Some(n) => Ok(n),
            None => self.count_bytes(bytes).map_err(SessionError::Parse),
        }
    }

    /// Whether the speculative chunk summaries for the given interior cuts
    /// certify — every chunk ends with the lexer back in text state and
    /// none hits a lexical error — i.e. whether the data-parallel path
    /// would commit its speculation rather than fall back to sequential.
    /// Diagnostic hook for the chunk-boundary conformance suite.
    ///
    /// # Errors
    ///
    /// [`CoreError::WorkerFailed`] if a summary worker panicked.
    pub fn chunks_certify(&self, bytes: &[u8], interior_cuts: &[usize]) -> Result<bool, CoreError> {
        match Self::normalize_cuts(bytes.len(), interior_cuts) {
            Some(cuts) => {
                let summaries = self.summarize_parallel(bytes, &cuts)?;
                Ok(self.compose(&summaries).is_some())
            }
            None => Ok(false),
        }
    }

    /// Concrete (non-speculative) run over one chunk from a known query
    /// state and node-id offset, collecting selected ids.  Pass 2 of the
    /// parallel select; the chunk was already validated, so errors cannot
    /// occur here.
    fn select_chunk(&self, chunk: &[u8], entry_q: u16, node_off: usize) -> Vec<usize> {
        if self.lexer.force_scalar {
            return self.select_chunk_scalar(chunk, entry_q, node_off);
        }
        let k = self.k;
        let k2 = 2 * k;
        let mut out = Vec::new();
        let mut node = node_off;
        let mut stats = ScanStats::default();
        if let Some(evtab) = self.evtab.as_deref() {
            let mut qoff = entry_q as usize * self.estride;
            structural_scan(&self.lexer, chunk, TEXT, &mut stats, &mut |ev, _| {
                let e = evtab[qoff + ev as usize];
                if e >> 15 != 0 {
                    out.push(node);
                }
                let ev = ev as usize;
                node += (ev <= k || ev > k2) as usize;
                qoff = (e & 0x7FFF) as usize;
                true
            });
        } else {
            let mut q = entry_q as usize;
            structural_scan(&self.lexer, chunk, TEXT, &mut stats, &mut |ev, _| {
                let (q2, opened, sel) = self.event_step(q, ev);
                q = q2;
                if sel {
                    out.push(node);
                }
                node += opened as usize;
                true
            });
        }
        out
    }

    fn select_chunk_scalar(&self, chunk: &[u8], entry_q: u16, node_off: usize) -> Vec<usize> {
        let m = self.m;
        let table = self.table.as_slice();
        let mask = table.len() - 1;
        let mut s = entry_q as usize; // lexer TEXT ⇒ composite id == q
        let mut out = Vec::new();
        let mut node = node_off;
        let n = chunk.len();
        let mut i = 0usize;
        while i < n {
            if s < m {
                i = find_lt(chunk, i);
                if i >= n {
                    break;
                }
                s += LT as usize * m;
                i += 1;
                if i >= n {
                    break;
                }
            }
            let p = table[((s << 8) | chunk[i] as usize) & mask];
            s = (p & 0xFFFF) as usize;
            if p >> 16 != 0 {
                let f = (p >> 16) as u8;
                if f & FLAG_SELECTED != 0 {
                    out.push(node);
                }
                node += f as usize & 1;
            }
            i += 1;
        }
        out
    }

    /// Data-parallel select: pass 1 summarizes chunks (in parallel) to
    /// learn each chunk's entry state and node-id offset, pass 2 re-runs
    /// the chunks concretely (in parallel) collecting ids.  Falls back to
    /// [`Self::select_bytes`] whenever speculation fails.
    ///
    /// # Errors
    ///
    /// As for [`Self::count_bytes_chunked`].
    pub fn select_bytes_chunked(
        &self,
        bytes: &[u8],
        n_threads: usize,
    ) -> Result<Vec<usize>, SessionError> {
        let Some(cuts) = self.chunk_plan(bytes, n_threads) else {
            return self.select_bytes(bytes).map_err(SessionError::Parse);
        };
        match self.select_with_cuts(bytes, &cuts)? {
            Some(out) => Ok(out),
            None => self.select_bytes(bytes).map_err(SessionError::Parse),
        }
    }

    /// Like [`Self::select_bytes_chunked`] but with caller-chosen interior
    /// cut positions; see [`Self::count_bytes_chunked_at`].
    ///
    /// # Errors
    ///
    /// As for [`Self::count_bytes_chunked`].
    pub fn select_bytes_chunked_at(
        &self,
        bytes: &[u8],
        interior_cuts: &[usize],
    ) -> Result<Vec<usize>, SessionError> {
        let Some(cuts) = Self::normalize_cuts(bytes.len(), interior_cuts) else {
            return self.select_bytes(bytes).map_err(SessionError::Parse);
        };
        match self.select_with_cuts(bytes, &cuts)? {
            Some(out) => Ok(out),
            None => self.select_bytes(bytes).map_err(SessionError::Parse),
        }
    }

    /// Speculative two-pass select over an explicit cut vector; `Ok(None)`
    /// when the summaries fail to certify.
    fn select_with_cuts(
        &self,
        bytes: &[u8],
        cuts: &[usize],
    ) -> Result<Option<Vec<usize>>, CoreError> {
        let summaries = self.summarize_parallel(bytes, cuts)?;
        let Some((entry_q, offsets)) = self.compose(&summaries) else {
            return Ok(None);
        };
        let per_chunk: Result<Vec<Vec<usize>>, CoreError> = std::thread::scope(|scope| {
            let handles: Vec<_> = cuts
                .windows(2)
                .zip(entry_q.iter().zip(&offsets))
                .map(|(w, (&q, &off))| {
                    let chunk = &bytes[w[0]..w[1]];
                    scope.spawn(move || self.select_chunk(chunk, q, off))
                })
                .collect();
            join_all(handles)
        });
        Ok(Some(per_chunk?.concat()))
    }

    /// Test hook: truncates the factored query-transition table that only
    /// the chunk-summary workers read, so the next chunked call panics
    /// inside those workers and nowhere else — the fault-injection suite
    /// uses it to prove worker panics surface as a clean
    /// [`CoreError::WorkerFailed`] instead of an abort.
    #[doc(hidden)]
    pub fn poison_chunk_workers_for_tests(&mut self) {
        self.qnext.truncate(1);
    }
}

// ---------------------------------------------------------------------------
// Fused DRA (HAR) and stack engines
// ---------------------------------------------------------------------------

/// Lemma 3.8 evaluation driven directly by the byte lexer: the depth
/// counter, register file, and SCC chain live in locals, and the only
/// per-event work beyond the DFA step is one register comparison — the
/// paper's "transitions at very low CPU cost", now starting from bytes.
pub(crate) struct FusedHar {
    pub(crate) lexer: TagLexer,
    pub(crate) program: HarMarkupProgram,
}

impl FusedHar {
    /// Single pass over bytes; `on_open(node, selected)` per opened node.
    /// Certified tags come straight off the structural index (scalar
    /// when forced); either driver feeds the same event closure.
    fn run(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
        force: bool,
        mut on_open: impl FnMut(usize, bool),
    ) -> Result<(), ()> {
        let core = self.program.core();
        let dfa = core.dfa();
        let component = core.component();
        let rewind = core.rewind_markup();
        let k = self.lexer.k();
        let k2 = 2 * k;

        let mut regs = [0i64; MAX_CHAIN];
        let mut chain = [0u16; MAX_CHAIN];
        let mut chain_len = 0usize;
        let mut current = dfa.init();
        let mut dead = false;
        let mut depth: i64 = 0;
        let mut node = 0usize;

        let mut handle = |ev: u16| {
            let (open_l, close_l) = if (ev as usize) <= k2 {
                let t = ev as usize - 1;
                if t < k {
                    (Some(t), None)
                } else {
                    (None, Some(t - k))
                }
            } else {
                let l = ev as usize - 1 - k2;
                (Some(l), Some(l))
            };
            if let Some(l) = open_l {
                depth += 1;
                if !dead {
                    let next = dfa.step(current, l);
                    if component[next] != component[current] {
                        chain[chain_len] = current as u16;
                        regs[chain_len] = depth;
                        chain_len += 1;
                    }
                    current = next;
                    on_open(node, dfa.is_accepting(current));
                } else {
                    on_open(node, false);
                }
                node += 1;
            }
            if let Some(l) = close_l {
                depth -= 1;
                if !dead {
                    if chain_len > 0 && regs[chain_len - 1] > depth {
                        chain_len -= 1;
                        current = chain[chain_len] as usize;
                    } else {
                        match rewind[current * k + l] {
                            Some(p2) => current = p2,
                            None => dead = true,
                        }
                    }
                }
            }
        };
        if force || self.lexer.force_scalar() {
            return self.lexer.scan(bytes, &mut handle);
        }
        match structural_scan(&self.lexer, bytes, TEXT, stats, &mut |ev, _| {
            handle(ev);
            true
        }) {
            ScanEnd::Complete { lex } if lex == TEXT => Ok(()),
            ScanEnd::Stopped => unreachable!("unguarded sink never stops"),
            _ => Err(()),
        }
    }

    /// [`Self::run`] with the depth and imbalance budgets checked inline.
    /// Returns `Ok(true)` on a clean complete pass, `Ok(false)` the
    /// moment a budget is breached — the scan stops before the evaluator
    /// does any further work, and the caller re-runs the windowed session
    /// cold to reproduce the exact diagnostic (breaches are not the
    /// throughput case).  `Err(())` still means malformed input.
    ///
    /// Structured exactly like [`Self::run`]: the scan-closure shape is
    /// what keeps the register file and depth counter in machine
    /// registers, and the two extra compares per *event* (not per byte)
    /// are in the noise next to the DFA step.  `inline(never)` keeps the
    /// loop out of the caller's multi-backend dispatch body, where the
    /// combined register pressure would spill the hot state.
    #[inline(never)]
    pub(crate) fn run_guarded(
        &self,
        bytes: &[u8],
        max_depth: i64,
        min_depth: i64,
        stats: &mut ScanStats,
        force: bool,
        mut on_open: impl FnMut(usize, bool),
    ) -> Result<bool, ()> {
        let core = self.program.core();
        let dfa = core.dfa();
        let component = core.component();
        let rewind = core.rewind_markup();
        let k = self.lexer.k();
        let k2 = 2 * k;

        let mut regs = [0i64; MAX_CHAIN];
        let mut chain = [0u16; MAX_CHAIN];
        let mut chain_len = 0usize;
        let mut current = dfa.init();
        let mut dead = false;
        let mut depth: i64 = 0;
        let mut node = 0usize;
        let mut breached = false;

        let mut handle = |ev: u16| {
            let (open_l, close_l) = if (ev as usize) <= k2 {
                let t = ev as usize - 1;
                if t < k {
                    (Some(t), None)
                } else {
                    (None, Some(t - k))
                }
            } else {
                let l = ev as usize - 1 - k2;
                (Some(l), Some(l))
            };
            if let Some(l) = open_l {
                depth += 1;
                if depth > max_depth {
                    breached = true;
                    return false;
                }
                if !dead {
                    let next = dfa.step(current, l);
                    if component[next] != component[current] {
                        chain[chain_len] = current as u16;
                        regs[chain_len] = depth;
                        chain_len += 1;
                    }
                    current = next;
                    on_open(node, dfa.is_accepting(current));
                } else {
                    on_open(node, false);
                }
                node += 1;
            }
            if let Some(l) = close_l {
                depth -= 1;
                if depth < min_depth {
                    breached = true;
                    return false;
                }
                if !dead {
                    if chain_len > 0 && regs[chain_len - 1] > depth {
                        chain_len -= 1;
                        current = chain[chain_len] as usize;
                    } else {
                        match rewind[current * k + l] {
                            Some(p2) => current = p2,
                            None => dead = true,
                        }
                    }
                }
            }
            true
        };
        if force || self.lexer.force_scalar() {
            return self.lexer.scan_ctl(bytes, &mut handle).map(|()| !breached);
        }
        match structural_scan(&self.lexer, bytes, TEXT, stats, &mut |ev, _| handle(ev)) {
            ScanEnd::Complete { lex } if lex == TEXT => Ok(!breached),
            ScanEnd::Stopped => Ok(!breached),
            _ => Err(()),
        }
    }
}

/// The pushdown fallback driven directly by the byte lexer: push the DFA
/// state at opens, pop at closes — same visible behaviour as
/// `st_baseline::stack::StackEvaluator` over scanned events, minus the
/// event stream.
pub(crate) struct FusedStack {
    pub(crate) lexer: TagLexer,
    /// The minimal automaton of L (over Γ, `k` letters).
    pub(crate) dfa: Dfa,
}

impl FusedStack {
    fn run(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
        force: bool,
        mut on_open: impl FnMut(usize, bool),
    ) -> Result<(), ()> {
        let k = self.lexer.k();
        let k2 = 2 * k;
        let mut stack: Vec<usize> = Vec::new();
        let mut current = self.dfa.init();
        let mut node = 0usize;
        let mut handle = |ev: u16| {
            let (open_l, close) = if (ev as usize) <= k2 {
                let t = ev as usize - 1;
                if t < k {
                    (Some(t), false)
                } else {
                    (None, true)
                }
            } else {
                (Some(ev as usize - 1 - k2), true)
            };
            if let Some(l) = open_l {
                stack.push(current);
                current = self.dfa.step(current, l);
                on_open(node, self.dfa.is_accepting(current));
                node += 1;
            }
            if close {
                // Underflowing pop keeps the state, like the baseline.
                current = stack.pop().unwrap_or(current);
            }
        };
        if force || self.lexer.force_scalar() {
            return self.lexer.scan(bytes, &mut handle);
        }
        match structural_scan(&self.lexer, bytes, TEXT, stats, &mut |ev, _| {
            handle(ev);
            true
        }) {
            ScanEnd::Complete { lex } if lex == TEXT => Ok(()),
            ScanEnd::Stopped => unreachable!("unguarded sink never stops"),
            _ => Err(()),
        }
    }

    /// Guarded variant of [`Self::run`]; see [`FusedHar::run_guarded`]
    /// for the contract.  The depth check fires *before* the push, so a
    /// breach caps the pushdown stack at `max_depth` entries — the guard
    /// protects the very allocation this engine is named for.
    #[inline(never)]
    pub(crate) fn run_guarded(
        &self,
        bytes: &[u8],
        max_depth: i64,
        min_depth: i64,
        stats: &mut ScanStats,
        force: bool,
        mut on_open: impl FnMut(usize, bool),
    ) -> Result<bool, ()> {
        let k = self.lexer.k();
        let k2 = 2 * k;
        let mut stack: Vec<usize> = Vec::new();
        let mut current = self.dfa.init();
        let mut node = 0usize;
        let mut depth: i64 = 0;
        let mut breached = false;
        let mut handle = |ev: u16| {
            let (open_l, close) = if (ev as usize) <= k2 {
                let t = ev as usize - 1;
                if t < k {
                    (Some(t), false)
                } else {
                    (None, true)
                }
            } else {
                (Some(ev as usize - 1 - k2), true)
            };
            if let Some(l) = open_l {
                depth += 1;
                if depth > max_depth {
                    breached = true;
                    return false;
                }
                stack.push(current);
                current = self.dfa.step(current, l);
                on_open(node, self.dfa.is_accepting(current));
                node += 1;
            }
            if close {
                depth -= 1;
                if depth < min_depth {
                    breached = true;
                    return false;
                }
                current = stack.pop().unwrap_or(current);
            }
            true
        };
        if force || self.lexer.force_scalar() {
            return self.lexer.scan_ctl(bytes, &mut handle).map(|()| !breached);
        }
        match structural_scan(&self.lexer, bytes, TEXT, stats, &mut |ev, _| handle(ev)) {
            ScanEnd::Complete { lex } if lex == TEXT => Ok(!breached),
            ScanEnd::Stopped => Ok(!breached),
            _ => Err(()),
        }
    }
}

pub(crate) enum FusedBackend {
    Registerless(ByteDfa),
    Stackless(FusedHar),
    Stack(FusedStack),
}

/// A compiled query fused with the byte lexer of a fixed alphabet:
/// evaluates `select`/`count` in a single pass over raw document bytes,
/// using whichever engine the planner picked for the language.
///
/// Built by [`crate::planner::CompiledQuery::fused`].
pub struct FusedQuery {
    pub(crate) alphabet: Alphabet,
    pub(crate) backend: FusedBackend,
}

impl FusedQuery {
    /// Fuses a registerless query DFA (over Γ ∪ Γ̄) with the byte lexer.
    ///
    /// Prefer [`crate::query::Query::compile`], which lets the planner
    /// choose the backend; this constructor stays public for callers
    /// that already hold a markup DFA.
    ///
    /// # Errors
    ///
    /// See [`ByteDfa::new`].
    #[doc(hidden)]
    pub fn registerless(dfa: &Dfa, alphabet: &Alphabet) -> Result<FusedQuery, CoreError> {
        Ok(FusedQuery {
            alphabet: alphabet.clone(),
            backend: FusedBackend::Registerless(ByteDfa::new(dfa, alphabet)?),
        })
    }

    /// Fuses a Lemma 3.8 depth-register program with the byte lexer.
    /// Prefer [`crate::query::Query::compile`].
    #[doc(hidden)]
    pub fn stackless(program: HarMarkupProgram, alphabet: &Alphabet) -> FusedQuery {
        FusedQuery {
            alphabet: alphabet.clone(),
            backend: FusedBackend::Stackless(FusedHar {
                lexer: TagLexer::new(alphabet),
                program,
            }),
        }
    }

    /// Fuses the pushdown fallback (over the minimal automaton of L) with
    /// the byte lexer.  Prefer [`crate::query::Query::compile`].
    #[doc(hidden)]
    pub fn stack(dfa: &Dfa, alphabet: &Alphabet) -> FusedQuery {
        FusedQuery {
            alphabet: alphabet.clone(),
            backend: FusedBackend::Stack(FusedStack {
                lexer: TagLexer::new(alphabet),
                dfa: dfa.clone(),
            }),
        }
    }

    /// The strategy of the underlying engine.
    pub fn strategy(&self) -> crate::planner::Strategy {
        match &self.backend {
            FusedBackend::Registerless(_) => crate::planner::Strategy::Registerless,
            FusedBackend::Stackless(_) => crate::planner::Strategy::Stackless,
            FusedBackend::Stack(_) => crate::planner::Strategy::Stack,
        }
    }

    /// The registerless byte engine, when that is the chosen backend
    /// (exposes the data-parallel entry points).
    pub fn byte_dfa(&self) -> Option<&ByteDfa> {
        match &self.backend {
            FusedBackend::Registerless(b) => Some(b),
            _ => None,
        }
    }

    /// Forces (or re-enables) the scalar byte path for this query: with
    /// `true`, every evaluation walks the composite tables per byte
    /// instead of striding the structural index.  Defaults to the
    /// process-wide `ST_FORCE_SCALAR` escape hatch.  Results are
    /// bitwise identical either way; this exists as a kill switch and
    /// for differential testing.
    pub fn set_force_scalar(&mut self, on: bool) {
        match &mut self.backend {
            FusedBackend::Registerless(b) => b.set_force_scalar(on),
            FusedBackend::Stackless(e) => e.lexer.set_force_scalar(on),
            FusedBackend::Stack(e) => e.lexer.set_force_scalar(on),
        }
    }

    /// Whether the scalar byte path is forced for this query.
    pub fn force_scalar(&self) -> bool {
        match &self.backend {
            FusedBackend::Registerless(b) => b.lexer().force_scalar(),
            FusedBackend::Stackless(e) => e.lexer.force_scalar(),
            FusedBackend::Stack(e) => e.lexer.force_scalar(),
        }
    }

    /// Document-order ids of selected nodes, in one pass over raw bytes.
    ///
    /// # Errors
    ///
    /// The `Scanner`'s diagnostic if the document is malformed.
    pub fn select_bytes(&self, bytes: &[u8]) -> Result<Vec<usize>, TreeError> {
        self.select_bytes_stats(bytes, &mut ScanStats::default())
    }

    /// [`Self::select_bytes`] exposing the structural-index window
    /// tallies (experiment harness / obs plumbing).
    #[doc(hidden)]
    pub fn select_bytes_stats(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
    ) -> Result<Vec<usize>, TreeError> {
        self.select_bytes_opts(bytes, stats, false)
    }

    pub(crate) fn select_bytes_opts(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
        force: bool,
    ) -> Result<Vec<usize>, TreeError> {
        match &self.backend {
            FusedBackend::Registerless(b) => b.select_bytes_opts(bytes, stats, force),
            FusedBackend::Stackless(e) => {
                let mut out = Vec::new();
                e.run(bytes, stats, force, |node, sel| {
                    if sel {
                        out.push(node);
                    }
                })
                .map_err(|()| rescan_error(bytes, &self.alphabet))?;
                Ok(out)
            }
            FusedBackend::Stack(e) => {
                let mut out = Vec::new();
                e.run(bytes, stats, force, |node, sel| {
                    if sel {
                        out.push(node);
                    }
                })
                .map_err(|()| rescan_error(bytes, &self.alphabet))?;
                Ok(out)
            }
        }
    }

    /// Streaming count of selected nodes, in one pass over raw bytes.
    ///
    /// # Errors
    ///
    /// The `Scanner`'s diagnostic if the document is malformed.
    pub fn count_bytes(&self, bytes: &[u8]) -> Result<usize, TreeError> {
        self.count_bytes_stats(bytes, &mut ScanStats::default())
    }

    /// [`Self::count_bytes`] exposing the structural-index window
    /// tallies (experiment harness / obs plumbing).
    #[doc(hidden)]
    pub fn count_bytes_stats(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
    ) -> Result<usize, TreeError> {
        self.count_bytes_opts(bytes, stats, false)
    }

    pub(crate) fn count_bytes_opts(
        &self,
        bytes: &[u8],
        stats: &mut ScanStats,
        force: bool,
    ) -> Result<usize, TreeError> {
        match &self.backend {
            FusedBackend::Registerless(b) => b.count_bytes_opts(bytes, stats, force),
            FusedBackend::Stackless(e) => {
                let mut n = 0usize;
                e.run(bytes, stats, force, |_, sel| n += sel as usize)
                    .map_err(|()| rescan_error(bytes, &self.alphabet))?;
                Ok(n)
            }
            FusedBackend::Stack(e) => {
                let mut n = 0usize;
                e.run(bytes, stats, force, |_, sel| n += sel as usize)
                    .map_err(|()| rescan_error(bytes, &self.alphabet))?;
                Ok(n)
            }
        }
    }

    /// Like [`Self::count_bytes`] but uses the data-parallel chunked path
    /// when the backend is registerless (the only backend whose state
    /// composes); other backends run the sequential fused pass.
    ///
    /// # Errors
    ///
    /// As for [`ByteDfa::count_bytes_chunked`].
    pub fn count_bytes_parallel(
        &self,
        bytes: &[u8],
        n_threads: usize,
    ) -> Result<usize, SessionError> {
        match &self.backend {
            FusedBackend::Registerless(b) => b.count_bytes_chunked(bytes, n_threads),
            _ => self.count_bytes(bytes).map_err(SessionError::Parse),
        }
    }

    /// Like [`Self::select_bytes`] but uses the data-parallel chunked
    /// path when the backend is registerless.
    ///
    /// # Errors
    ///
    /// As for [`ByteDfa::select_bytes_chunked`].
    pub fn select_bytes_parallel(
        &self,
        bytes: &[u8],
        n_threads: usize,
    ) -> Result<Vec<usize>, SessionError> {
        match &self.backend {
            FusedBackend::Registerless(b) => b.select_bytes_chunked(bytes, n_threads),
            _ => self.select_bytes(bytes).map_err(SessionError::Parse),
        }
    }

    /// Records one completed engine run into `obs`.  The byte loops
    /// themselves stay untouched — metrics are tallied once per run, so
    /// the no-op handle's cost is a handful of branches per document.
    fn record_run(
        &self,
        obs: &st_obs::ObsHandle,
        bytes: usize,
        matches: Option<usize>,
        stats: &ScanStats,
    ) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter("engine_runs_total").incr();
        obs.counter("engine_bytes_total").add(bytes as u64);
        match matches {
            Some(n) => obs.counter("engine_matches_total").add(n as u64),
            None => obs.counter("engine_failed_runs_total").incr(),
        }
        record_scan_stats(obs, stats);
    }

    /// [`Self::count_bytes`] with per-run metrics (`engine_runs_total`,
    /// `engine_bytes_total`, `engine_matches_total`,
    /// `engine_failed_runs_total`, and the structural-index tallies
    /// `engine_simd_windows` / `engine_scalar_fallback_windows`)
    /// recorded into `obs`.
    ///
    /// # Errors
    ///
    /// As for [`Self::count_bytes`].
    pub fn count_bytes_observed(
        &self,
        bytes: &[u8],
        obs: &st_obs::ObsHandle,
    ) -> Result<usize, TreeError> {
        let mut stats = ScanStats::default();
        let res = self.count_bytes_stats(bytes, &mut stats);
        self.record_run(obs, bytes.len(), res.as_ref().ok().copied(), &stats);
        res
    }

    /// [`Self::select_bytes`] with per-run metrics recorded into `obs`;
    /// see [`Self::count_bytes_observed`].
    ///
    /// # Errors
    ///
    /// As for [`Self::select_bytes`].
    pub fn select_bytes_observed(
        &self,
        bytes: &[u8],
        obs: &st_obs::ObsHandle,
    ) -> Result<Vec<usize>, TreeError> {
        let mut stats = ScanStats::default();
        let res = self.select_bytes_stats(bytes, &mut stats);
        self.record_run(obs, bytes.len(), res.as_ref().ok().map(Vec::len), &stats);
        res
    }

    /// [`Self::count_bytes_parallel`] with per-run metrics recorded into
    /// `obs`, plus the chunked-path tallies `engine_chunked_runs_total`
    /// and `engine_chunks_total` when the data-parallel path ran.
    ///
    /// # Errors
    ///
    /// As for [`Self::count_bytes_parallel`].
    pub fn count_bytes_parallel_observed(
        &self,
        bytes: &[u8],
        n_threads: usize,
        obs: &st_obs::ObsHandle,
    ) -> Result<usize, SessionError> {
        let res = self.count_bytes_parallel(bytes, n_threads);
        self.record_run(
            obs,
            bytes.len(),
            res.as_ref().ok().copied(),
            &ScanStats::default(),
        );
        self.record_chunked(obs, n_threads);
        res
    }

    /// [`Self::select_bytes_parallel`] with per-run metrics recorded into
    /// `obs`; see [`Self::count_bytes_parallel_observed`].
    ///
    /// # Errors
    ///
    /// As for [`Self::select_bytes_parallel`].
    pub fn select_bytes_parallel_observed(
        &self,
        bytes: &[u8],
        n_threads: usize,
        obs: &st_obs::ObsHandle,
    ) -> Result<Vec<usize>, SessionError> {
        let res = self.select_bytes_parallel(bytes, n_threads);
        self.record_run(
            obs,
            bytes.len(),
            res.as_ref().ok().map(Vec::len),
            &ScanStats::default(),
        );
        self.record_chunked(obs, n_threads);
        res
    }

    fn record_chunked(&self, obs: &st_obs::ObsHandle, n_threads: usize) {
        if obs.is_enabled() && matches!(&self.backend, FusedBackend::Registerless(_)) {
            obs.counter("engine_chunked_runs_total").incr();
            obs.counter("engine_chunks_total").add(n_threads as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{CompiledQuery, Strategy};
    use st_automata::{compile_regex, Tag};
    use st_trees::encode::markup_encode;
    use st_trees::generate;
    use st_trees::xml::write_events;

    /// Decodes a lexer event stream into tags (test aid only).
    fn lex_tags(lexer: &TagLexer, bytes: &[u8]) -> Result<Vec<Tag>, ()> {
        let k = lexer.k();
        let mut out = Vec::new();
        lexer.scan(bytes, |ev| {
            let ev = ev as usize;
            if ev <= 2 * k {
                let t = ev - 1;
                if t < k {
                    out.push(Tag::Open(st_automata::Letter(t as u32)));
                } else {
                    out.push(Tag::Close(st_automata::Letter((t - k) as u32)));
                }
            } else {
                let l = (ev - 1 - 2 * k) as u32;
                out.push(Tag::Open(st_automata::Letter(l)));
                out.push(Tag::Close(st_automata::Letter(l)));
            }
        })?;
        Ok(out)
    }

    fn scanner_tags(bytes: &[u8], alphabet: &Alphabet) -> Result<Vec<Tag>, TreeError> {
        Scanner::new(bytes, alphabet).collect()
    }

    #[test]
    fn lexer_matches_scanner_on_corpus() {
        let g = Alphabet::of_chars("abc");
        let lexer = TagLexer::new(&g);
        let corpus: &[&[u8]] = &[
            b"",
            b"text only, no tags at all",
            b"<a></a>",
            b"<a><b></b><c/></a>",
            b"<a>text<b>more</b>tail</a>",
            b"<?xml version=\"1.0\"?><a><b/></a>",
            b"<!DOCTYPE a [<!ELEMENT a (b)>]><a><b/></a>",
            b"<a><!-- comment with <b> inside --><b></b></a>",
            b"<a x=\"1\" y='2'><b class='q/\"z'/></a>",
            b"<a x=\">\"><b/></a>",
            b"<a/>",
            b"<a />",
            b"<a><b   ></b   ></a>",
            b"<a\t\n><b/></a\n>",
            b"<!---->",
            b"<!-- -- ></a-->",
            b"<!>",
            b"<!->",
            b"<a key=\"v/\">literal / in attr</a>",
            b"<a><c></c></a><b></b>", // forest: scanner tokenizes fine
            b"</a>",                  // unbalanced close: still tokenizes
            // Error cases (both sides must reject):
            b"<a><",
            b"< a></a>",
            b"<a></ >",
            b"<a><!-- unterminated",
            b"<a><? unterminated",
            b"<unknown/>",
            b"<ab></ab>",
            b"<a></unknown>",
            b"<a></ab>",
            b"<a", // unterminated opening tag
            b"<",
            b"<a x=\"unterminated>",
            b"<1a/>",
        ];
        for &doc in corpus {
            let want = scanner_tags(doc, &g);
            let got = lex_tags(&lexer, doc);
            match (&want, &got) {
                (Ok(w), Ok(l)) => assert_eq!(w, l, "doc {:?}", String::from_utf8_lossy(doc)),
                (Err(_), Err(())) => {}
                _ => panic!(
                    "lexer/scanner disagree on {:?}: scanner {:?}, lexer {:?}",
                    String::from_utf8_lossy(doc),
                    want,
                    got
                ),
            }
        }
    }

    #[test]
    fn lexer_handles_multibyte_and_prefix_labels() {
        let g = Alphabet::from_symbols(["item", "it", "x"]).unwrap();
        let lexer = TagLexer::new(&g);
        let corpus: &[&[u8]] = &[
            b"<item><it/><x></x></item>",
            b"<it><item a=\"1\"></item></it>",
            b"<item  ></item >",
            b"<ite/>",   // prefix of a label but not a label: error
            b"<items/>", // extends past every label: error
            b"<i>",
        ];
        for &doc in corpus {
            let want = scanner_tags(doc, &g);
            let got = lex_tags(&lexer, doc);
            match (&want, &got) {
                (Ok(w), Ok(l)) => assert_eq!(w, l, "doc {:?}", String::from_utf8_lossy(doc)),
                (Err(_), Err(())) => {}
                _ => panic!(
                    "disagree on {:?}: scanner {:?}, lexer {:?}",
                    String::from_utf8_lossy(doc),
                    want,
                    got
                ),
            }
        }
    }

    /// Renders a tag stream with noise the scanner must skip: attributes,
    /// comments, text, and self-closing leaves, deterministic per seed.
    fn decorate(tags: &[Tag], alphabet: &Alphabet, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::new();
        if rand() % 2 == 0 {
            out.extend_from_slice(b"<?xml version=\"1.0\"?>");
        }
        let mut i = 0;
        while i < tags.len() {
            match tags[i] {
                Tag::Open(l) => {
                    // Self-closing shorthand for leaves, sometimes.
                    let leaf = matches!(tags.get(i + 1), Some(Tag::Close(l2)) if *l2 == l);
                    out.push(b'<');
                    out.extend_from_slice(alphabet.symbol(l).as_bytes());
                    match rand() % 4 {
                        0 => out.extend_from_slice(b" id=\"x<y>\""),
                        1 => out.extend_from_slice(b" q='a/b'"),
                        2 => out.extend_from_slice(b" a=1 b = \"2\""),
                        _ => {}
                    }
                    if leaf && rand() % 2 == 0 {
                        out.extend_from_slice(b"/>");
                        i += 2;
                        continue;
                    }
                    out.push(b'>');
                }
                Tag::Close(l) => {
                    out.extend_from_slice(b"</");
                    out.extend_from_slice(alphabet.symbol(l).as_bytes());
                    if rand() % 4 == 0 {
                        out.push(b' ');
                    }
                    out.push(b'>');
                }
            }
            match rand() % 5 {
                0 => out.extend_from_slice(b"some text"),
                1 => out.extend_from_slice(b"<!-- a <b> comment -->"),
                _ => {}
            }
            i += 1;
        }
        out
    }

    #[test]
    fn fused_backends_agree_with_event_pipeline() {
        let g = Alphabet::of_chars("abc");
        // One pattern per strategy (Example 2.12 rows).
        for (pattern, strategy) in [
            ("a.*b", Strategy::Registerless),
            ("ab", Strategy::Stackless),
            (".*a.*b", Strategy::Stackless),
            (".*ab", Strategy::Stack),
        ] {
            let dfa = compile_regex(pattern, &g).unwrap();
            let plan = CompiledQuery::compile(&dfa);
            assert_eq!(plan.strategy(), strategy, "pattern {pattern}");
            let fused = plan.fused(&g).unwrap();
            assert_eq!(fused.strategy(), strategy);
            for seed in 0..20 {
                let tree = generate::random_attachment(&g, 120, 0.55, seed);
                let tags = markup_encode(&tree);
                let want = plan.select(&tags);
                // Plain skeleton and decorated rendering must both match.
                for bytes in [
                    write_events(&tags, &g).into_bytes(),
                    decorate(&tags, &g, seed),
                ] {
                    let got = fused.select_bytes(&bytes).unwrap();
                    assert_eq!(got, want, "pattern {pattern} seed {seed}");
                    assert_eq!(
                        fused.count_bytes(&bytes).unwrap(),
                        want.len(),
                        "pattern {pattern} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_agrees_with_sequential() {
        let g = Alphabet::of_chars("abc");
        let dfa = compile_regex("a.*b", &g).unwrap();
        let plan = CompiledQuery::compile(&dfa);
        let fused = plan.fused(&g).unwrap();
        let byte_dfa = fused.byte_dfa().expect("a.*b is registerless");
        for seed in 0..4 {
            let tree = generate::random_attachment(&g, 4000, 0.6, seed);
            let tags = markup_encode(&tree);
            let mut bytes = decorate(&tags, &g, seed);
            // Plant a comment containing '<' so some cut lands inside it
            // on at least some thread counts, exercising the fallback.
            let mid = bytes.len() / 2;
            let at = find_lt(&bytes, mid);
            bytes.splice(at..at, b"<!-- < tricky < cut -->".iter().copied());
            let want = byte_dfa.select_bytes(&bytes).unwrap();
            for threads in [2, 3, 4, 7] {
                assert_eq!(
                    byte_dfa.select_bytes_chunked(&bytes, threads).unwrap(),
                    want,
                    "seed {seed} threads {threads}"
                );
                assert_eq!(
                    byte_dfa.count_bytes_chunked(&bytes, threads).unwrap(),
                    want.len(),
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn errors_match_scanner_diagnostics() {
        let g = Alphabet::of_chars("ab");
        let dfa = compile_regex("a.*b", &g).unwrap();
        let plan = CompiledQuery::compile(&dfa);
        let fused = plan.fused(&g).unwrap();
        let bad: &[&[u8]] = &[b"<a><c></c></a>", b"<a><", b"<a></ >", b"<a><!-- x"];
        for &doc in bad {
            let want = scanner_tags(doc, &g).unwrap_err();
            let got = fused.select_bytes(doc).unwrap_err();
            assert_eq!(got, want, "doc {:?}", String::from_utf8_lossy(doc));
        }
    }

    #[test]
    fn composite_too_large_is_reported() {
        // A query DFA big enough that the product with the (small) lexer
        // overflows the u16 composite budget.
        let g = Alphabet::of_chars("ab");
        let m = 4000;
        let rows: Vec<Vec<usize>> = (0..m).map(|s| vec![s; 4]).collect();
        let dfa = Dfa::from_rows(4, 0, vec![false; m], rows).unwrap();
        match ByteDfa::new(&dfa, &g) {
            Err(CoreError::FusedTooLarge { .. }) => {}
            other => panic!("expected FusedTooLarge, got ok={:?}", other.is_ok()),
        }
    }
}
