//! The depth-register automaton model (Definition 2.1).
//!
//! A *depth-register automaton* is a deterministic machine over the markup
//! alphabet Γ ∪ Γ̄ (or the term alphabet Γ ∪ {◁}) equipped with
//!
//! * one **input-driven counter** holding the current depth: +1 on opening
//!   tags, −1 on closing tags — the machine cannot influence it;
//! * a bounded set of **registers** holding previously stored depths, whose
//!   only observable is the *order comparison* of each register against the
//!   current depth (the sets X≤ and X≥ of Definition 2.1); a transition may
//!   *load* the current depth into any subset of registers.
//!
//! The crate enforces this honesty architecturally: a [`DraProgram`] never
//! sees depth values.  Its `step` receives the input symbol and a
//! [`RegCmps`] — the pair of register sets (X≤, X≥) of Definition 2.1 as
//! two bitmasks, i.e. the comparison of every register against the **new**
//! depth dᵢ — and returns the next control state plus a [`LoadMask`] of
//! registers to overwrite with dᵢ.  The [`DraRunner`] owns the counter and
//! the register file, so no program can smuggle arithmetic on depths into
//! its control logic.

use std::cmp::Ordering;

use st_automata::{Dfa, Tag};
use st_trees::encode::TermEvent;

use crate::error::CoreError;

/// Maximum register count supported by [`DraRunner`] (masks are `u64`).
pub const MAX_REGISTERS: usize = 64;

/// Register count kept in [`DraRunner`]'s fixed-size register file; programs
/// with at most this many registers run without any heap traffic per step.
pub const SMALL_REGISTERS: usize = 8;

/// Bitmask of registers to load with the current depth (bit ξ = register ξ).
pub type LoadMask = u64;

/// The register-comparison observation of Definition 2.1, as bitmasks.
///
/// Bit ξ of `le` is set iff η(ξ) ≤ dᵢ (ξ ∈ X≤); bit ξ of `ge` is set iff
/// η(ξ) ≥ dᵢ (ξ ∈ X≥).  Every register is in at least one of the two sets,
/// and X≤ ∩ X≥ is exactly the registers equal to the current depth.  Two
/// words replace the per-step `Vec<Ordering>` the runner used to
/// materialize: computing them is branchless and the whole observation
/// stays in two machine registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegCmps {
    /// X≤: registers with value ≤ current depth.
    pub le: u64,
    /// X≥: registers with value ≥ current depth.
    pub ge: u64,
}

impl RegCmps {
    /// No registers at all (the observation of a register-free program).
    pub const EMPTY: RegCmps = RegCmps { le: 0, ge: 0 };

    /// Compares every register value against `depth`.
    #[inline]
    pub fn compute(registers: &[i64], depth: i64) -> RegCmps {
        let mut le = 0u64;
        let mut ge = 0u64;
        for (xi, &r) in registers.iter().enumerate() {
            le |= u64::from(r <= depth) << xi;
            ge |= u64::from(r >= depth) << xi;
        }
        RegCmps { le, ge }
    }

    /// The [`Ordering`] of register ξ's value against the current depth.
    #[inline]
    pub fn ordering(self, xi: usize) -> Ordering {
        let le = self.le >> xi & 1 == 1;
        let ge = self.ge >> xi & 1 == 1;
        match (le, ge) {
            (true, true) => Ordering::Equal,
            (false, true) => Ordering::Greater,
            _ => Ordering::Less,
        }
    }

    /// Whether η(ξ) = dᵢ.
    #[inline]
    pub fn is_equal(self, xi: usize) -> bool {
        (self.le & self.ge) >> xi & 1 == 1
    }

    /// Whether η(ξ) > dᵢ.
    #[inline]
    pub fn is_greater(self, xi: usize) -> bool {
        (self.ge & !self.le) >> xi & 1 == 1
    }

    /// Whether η(ξ) < dᵢ.
    #[inline]
    pub fn is_less(self, xi: usize) -> bool {
        (self.le & !self.ge) >> xi & 1 == 1
    }

    /// Mask of registers strictly greater than the current depth
    /// (X≥ \ X≤ — what a *restricted* transition must reload).
    #[inline]
    pub fn greater(self) -> LoadMask {
        self.ge & !self.le
    }

    /// Mask of registers strictly less than the current depth.
    #[inline]
    pub fn less(self) -> LoadMask {
        self.le & !self.ge
    }

    /// Mask of registers equal to the current depth (X≤ ∩ X≥).
    #[inline]
    pub fn equal(self) -> LoadMask {
        self.le & self.ge
    }

    /// Returns a copy with register ξ's comparison replaced.
    #[inline]
    pub fn with(mut self, xi: usize, ord: Ordering) -> RegCmps {
        let bit = 1u64 << xi;
        self.le &= !bit;
        self.ge &= !bit;
        match ord {
            Ordering::Less => self.le |= bit,
            Ordering::Equal => {
                self.le |= bit;
                self.ge |= bit;
            }
            Ordering::Greater => self.ge |= bit,
        }
        self
    }

    /// Builds the observation from explicit per-register orderings.
    pub fn from_orderings(cmps: &[Ordering]) -> RegCmps {
        let mut out = RegCmps::EMPTY;
        for (xi, &c) in cmps.iter().enumerate() {
            out = out.with(xi, c);
        }
        out
    }

    /// Expands the first `n` registers back into explicit orderings.
    pub fn to_orderings(self, n: usize) -> Vec<Ordering> {
        (0..n).map(|xi| self.ordering(xi)).collect()
    }

    /// Splits into the observations of the first `n` registers and of the
    /// rest (shifted down) — the synchronous-product decomposition.
    #[inline]
    pub fn split_at(self, n: usize) -> (RegCmps, RegCmps) {
        let mask = if n >= 64 { !0 } else { (1u64 << n) - 1 };
        (
            RegCmps {
                le: self.le & mask,
                ge: self.ge & mask,
            },
            RegCmps {
                le: self.le >> n,
                ge: self.ge >> n,
            },
        )
    }

    /// Base-3 code over the first `n` registers (digit ξ has weight 3^ξ:
    /// 0 = less, 1 = equal, 2 = greater) — the [`crate::table`] indexing.
    pub fn to_code(self, n: usize) -> usize {
        let mut code = 0usize;
        for xi in (0..n).rev() {
            code = code * 3
                + match self.ordering(xi) {
                    Ordering::Less => 0,
                    Ordering::Equal => 1,
                    Ordering::Greater => 2,
                };
        }
        code
    }

    /// Inverse of [`RegCmps::to_code`].
    pub fn from_code(mut code: usize, n: usize) -> RegCmps {
        let mut out = RegCmps::EMPTY;
        for xi in 0..n {
            out = out.with(
                xi,
                match code % 3 {
                    0 => Ordering::Less,
                    1 => Ordering::Equal,
                    _ => Ordering::Greater,
                },
            );
            code /= 3;
        }
        out
    }
}

/// An input symbol of a streamed encoding: drives the depth counter.
pub trait StreamSymbol: Copy {
    /// +1 for opening tags, −1 for closing tags.
    fn depth_delta(self) -> i64;

    /// Whether this symbol opens a node (pre-selection happens here).
    fn is_open(self) -> bool {
        self.depth_delta() > 0
    }
}

impl StreamSymbol for Tag {
    fn depth_delta(self) -> i64 {
        Tag::depth_delta(self)
    }
}

impl StreamSymbol for TermEvent {
    fn depth_delta(self) -> i64 {
        TermEvent::depth_delta(self)
    }
}

/// A depth-register automaton, expressed against the honest interface.
///
/// Implementations range from explicitly tabulated machines
/// ([`crate::table::TableDra`]) to the structured programs produced by the
/// Lemma 3.8 compiler ([`crate::har::HarMarkupProgram`]).  The control-state type
/// must range over a *finite* set for the implementation to be a genuine
/// DRA; every implementation in this crate documents its bound.
pub trait DraProgram {
    /// The encoding this program reads ([`Tag`] for markup, [`TermEvent`]
    /// for term).
    type Input: StreamSymbol;

    /// Control state.  Must range over a finite set.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Number of registers Ξ (≤ [`MAX_REGISTERS`]).
    fn n_registers(&self) -> usize;

    /// The initial control state q_init.
    fn init_state(&self) -> Self::State;

    /// Whether a control state is accepting.
    fn is_accepting(&self, state: &Self::State) -> bool;

    /// One transition.  `cmps` carries the ordering of every register's
    /// value against the **new** depth dᵢ as the (X≤, X≥) bitmask pair.
    /// Returns the next state and the set Y of registers to load with dᵢ.
    fn step(
        &self,
        state: &Self::State,
        input: Self::Input,
        cmps: RegCmps,
    ) -> (Self::State, LoadMask);
}

/// Executes a [`DraProgram`], owning the depth counter and register file.
///
/// A configuration (q, d, η) of Definition 2.1 is split between the program
/// state `q` (held here) and the numeric parts `d`, `η` (held here, never
/// shown to the program).  Registers are initialized to 0 and the counter
/// starts at 0, matching the paper's initial configuration.
///
/// Programs with at most [`SMALL_REGISTERS`] registers (every construction
/// in this crate, in practice) run entirely out of a fixed-size array: the
/// per-step comparison is a fixed-trip branchless loop producing the two
/// [`RegCmps`] words, so the whole configuration lives in machine
/// registers/L1 — the paper's "very low CPU cost" hypothesis.  Larger
/// programs (up to [`MAX_REGISTERS`]) spill to a heap-allocated file.
#[derive(Clone, Debug)]
pub struct DraRunner<'p, P: DraProgram> {
    program: &'p P,
    state: P::State,
    depth: i64,
    n_registers: usize,
    regs: [i64; SMALL_REGISTERS],
    spill: Vec<i64>,
}

impl<'p, P: DraProgram> DraRunner<'p, P> {
    /// Starts a run in the initial configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyRegisters`] if the program wants more than 64.
    pub fn new(program: &'p P) -> Result<Self, CoreError> {
        let n = program.n_registers();
        if n > MAX_REGISTERS {
            return Err(CoreError::TooManyRegisters { requested: n });
        }
        Ok(Self {
            program,
            state: program.init_state(),
            depth: 0,
            n_registers: n,
            regs: [0; SMALL_REGISTERS],
            spill: if n > SMALL_REGISTERS {
                vec![0; n]
            } else {
                Vec::new()
            },
        })
    }

    /// The (X≤, X≥) observation of the current register file.
    #[inline]
    fn compare(&self) -> RegCmps {
        if self.n_registers <= SMALL_REGISTERS {
            let d = self.depth;
            let mut le = 0u64;
            let mut ge = 0u64;
            // Fixed-trip loop over the whole array: branchless, unrollable.
            for xi in 0..SMALL_REGISTERS {
                le |= u64::from(self.regs[xi] <= d) << xi;
                ge |= u64::from(self.regs[xi] >= d) << xi;
            }
            let mask = (1u64 << self.n_registers) - 1;
            RegCmps {
                le: le & mask,
                ge: ge & mask,
            }
        } else {
            RegCmps::compute(&self.spill, self.depth)
        }
    }

    #[inline]
    fn apply_load(&mut self, load: LoadMask) {
        let d = self.depth;
        if self.n_registers <= SMALL_REGISTERS {
            for xi in 0..SMALL_REGISTERS {
                if load >> xi & 1 == 1 {
                    self.regs[xi] = d;
                }
            }
        } else {
            for (xi, r) in self.spill.iter_mut().enumerate() {
                if load >> xi & 1 == 1 {
                    *r = d;
                }
            }
        }
    }

    /// Processes one symbol; returns whether the new state is accepting.
    #[inline]
    pub fn step(&mut self, input: P::Input) -> bool {
        self.depth += input.depth_delta();
        let cmps = self.compare();
        let (next, load) = self.program.step(&self.state, input, cmps);
        if load != 0 {
            self.apply_load(load);
        }
        self.state = next;
        self.program.is_accepting(&self.state)
    }

    /// Current control state.
    pub fn state(&self) -> &P::State {
        &self.state
    }

    /// Current depth (diagnostics; the *program* never sees this).
    pub fn depth(&self) -> i64 {
        self.depth
    }

    /// Current register values (diagnostics only).
    pub fn registers(&self) -> &[i64] {
        if self.n_registers <= SMALL_REGISTERS {
            &self.regs[..self.n_registers]
        } else {
            &self.spill
        }
    }

    /// Whether the current configuration is accepting.
    pub fn is_accepting(&self) -> bool {
        self.program.is_accepting(&self.state)
    }
}

/// Replays a stream through the program and verifies the *restricted*
/// discipline of Section 2.2 dynamically: every transition must overwrite
/// all registers whose value strictly exceeds the current depth
/// (X≥ \ X≤ ⊆ Y).  Returns `false` at the first violating transition.
///
/// Restricted depth-register automata recognize only regular tree
/// languages (Proposition 2.3); the paper conjectures they capture all
/// regular stackless languages and notes all of its constructions are
/// restricted — [`crate::har`] and [`crate::pattern`] programs pass this
/// check by design, while Example 2.2's table automaton does not.
pub fn check_restricted_run<P: DraProgram>(
    program: &P,
    stream: &[P::Input],
) -> Result<bool, CoreError> {
    let n = program.n_registers();
    if n > MAX_REGISTERS {
        return Err(CoreError::TooManyRegisters { requested: n });
    }
    let mut state = program.init_state();
    let mut depth: i64 = 0;
    let mut registers = vec![0i64; n];
    for &sym in stream {
        depth += sym.depth_delta();
        let cmps = RegCmps::compute(&registers, depth);
        let (next, load) = program.step(&state, sym, cmps);
        if cmps.greater() & !load != 0 {
            return Ok(false);
        }
        for (xi, r) in registers.iter_mut().enumerate() {
            if load >> xi & 1 == 1 {
                *r = depth;
            }
        }
        state = next;
    }
    Ok(true)
}

/// Runs the program over a full stream and reports final acceptance (the
/// recognition semantics of Section 2.2).
pub fn accepts<P: DraProgram>(program: &P, stream: &[P::Input]) -> Result<bool, CoreError> {
    let mut runner = DraRunner::new(program)?;
    let mut accepting = runner.is_accepting();
    for &sym in stream {
        accepting = runner.step(sym);
    }
    Ok(accepting)
}

/// Runs the program over a full stream with pre-selection semantics
/// (Section 2.3): returns document-order ids of nodes whose *opening*
/// symbol left the automaton in an accepting state.
pub fn preselect<P: DraProgram>(program: &P, stream: &[P::Input]) -> Result<Vec<usize>, CoreError> {
    let mut runner = DraRunner::new(program)?;
    let mut selected = Vec::new();
    let mut node = 0usize;
    for &sym in stream {
        let accepting = runner.step(sym);
        if sym.is_open() {
            if accepting {
                selected.push(node);
            }
            node += 1;
        }
    }
    Ok(selected)
}

/// A plain DFA over the markup tag alphabet, viewed as a (register-free)
/// depth-register automaton.  This is the paper's observation that DRAs
/// with Ξ = ∅ are just DFAs over Γ ∪ Γ̄.
#[derive(Clone, Debug)]
pub struct TagDfaProgram<'a> {
    dfa: &'a Dfa,
    n_base_letters: usize,
}

impl<'a> TagDfaProgram<'a> {
    /// Wraps a DFA whose letters are tag indices (`0..n` opening, `n..2n`
    /// closing for `|Γ| = n`).
    ///
    /// # Panics
    ///
    /// Panics if the DFA's letter count is odd.
    pub fn new(dfa: &'a Dfa) -> Self {
        assert!(
            dfa.n_letters().is_multiple_of(2),
            "a markup DFA needs an even letter count (Γ ∪ Γ̄)"
        );
        Self {
            dfa,
            n_base_letters: dfa.n_letters() / 2,
        }
    }
}

impl DraProgram for TagDfaProgram<'_> {
    type Input = Tag;
    type State = usize;

    fn n_registers(&self) -> usize {
        0
    }

    fn init_state(&self) -> usize {
        self.dfa.init()
    }

    fn is_accepting(&self, state: &usize) -> bool {
        self.dfa.is_accepting(*state)
    }

    fn step(&self, state: &usize, input: Tag, _cmps: RegCmps) -> (usize, LoadMask) {
        let letter = match input {
            Tag::Open(l) => l.index(),
            Tag::Close(l) => self.n_base_letters + l.index(),
        };
        (self.dfa.step(*state, letter), 0)
    }
}

/// A plain DFA over the term alphabet Γ ∪ {◁} (letters `0..n` opening, `n`
/// the universal close), viewed as a register-free DRA over term events.
#[derive(Clone, Debug)]
pub struct TermDfaProgram<'a> {
    dfa: &'a Dfa,
    close_letter: usize,
}

impl<'a> TermDfaProgram<'a> {
    /// Wraps a DFA with `|Γ| + 1` letters, the last being ◁.
    pub fn new(dfa: &'a Dfa) -> Self {
        assert!(dfa.n_letters() >= 1);
        Self {
            dfa,
            close_letter: dfa.n_letters() - 1,
        }
    }
}

impl DraProgram for TermDfaProgram<'_> {
    type Input = TermEvent;
    type State = usize;

    fn n_registers(&self) -> usize {
        0
    }

    fn init_state(&self) -> usize {
        self.dfa.init()
    }

    fn is_accepting(&self, state: &usize) -> bool {
        self.dfa.is_accepting(*state)
    }

    fn step(&self, state: &usize, input: TermEvent, _cmps: RegCmps) -> (usize, LoadMask) {
        let letter = match input {
            TermEvent::Open(l) => l.index(),
            TermEvent::Close => self.close_letter,
        };
        (self.dfa.step(*state, letter), 0)
    }
}

/// Wraps a node-selecting program into an acceptor of EL — the Theorem 3.1
/// "(1) ⇒ (2)" construction: remember whether the previous symbol was an
/// opening tag that left the inner automaton accepting; if so and a closing
/// tag arrives (the node was a leaf, its path is in L), jump to an
/// all-accepting sink.
#[derive(Clone, Debug)]
pub struct ExistsAcceptor<P> {
    inner: P,
}

/// State of [`ExistsAcceptor`].
#[derive(Clone, PartialEq, Debug)]
pub enum ExistsState<S> {
    /// Still searching; the flag records "previous symbol was an opening
    /// tag and the inner state is accepting".
    Running(S, bool),
    /// Found a selected leaf: accept everything from here on.
    Found,
}

impl<P> ExistsAcceptor<P> {
    /// Wraps an inner pre-selecting program.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }
}

impl<P: DraProgram> DraProgram for ExistsAcceptor<P> {
    type Input = P::Input;
    type State = ExistsState<P::State>;

    fn n_registers(&self) -> usize {
        self.inner.n_registers()
    }

    fn init_state(&self) -> Self::State {
        ExistsState::Running(self.inner.init_state(), false)
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        matches!(state, ExistsState::Found)
    }

    fn step(&self, state: &Self::State, input: P::Input, cmps: RegCmps) -> (Self::State, LoadMask) {
        match state {
            // Sink states reload X≥ \ X≤ to stay restricted (Section 2.2).
            ExistsState::Found => (ExistsState::Found, cmps.greater()),
            ExistsState::Running(s, leaf_flag) => {
                if !input.is_open() && *leaf_flag {
                    return (ExistsState::Found, cmps.greater());
                }
                let (next, load) = self.inner.step(s, input, cmps);
                let flag = input.is_open() && self.inner.is_accepting(&next);
                (ExistsState::Running(next, flag), load)
            }
        }
    }
}

/// Wraps a node-selecting program into an acceptor of AL — the dual
/// Theorem 3.2 construction: if a leaf closes while the inner automaton
/// rejected its opening, the tree has a branch outside L; jump to an
/// all-rejecting sink.
#[derive(Clone, Debug)]
pub struct ForallAcceptor<P> {
    inner: P,
}

/// State of [`ForallAcceptor`].
#[derive(Clone, PartialEq, Debug)]
pub enum ForallState<S> {
    /// No bad leaf yet; the flag records "previous symbol was an opening
    /// tag and the inner state is rejecting".
    Running(S, bool),
    /// Found a rejected leaf: reject everything from here on.
    Failed,
}

impl<P> ForallAcceptor<P> {
    /// Wraps an inner pre-selecting program.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }
}

impl<P: DraProgram> DraProgram for ForallAcceptor<P> {
    type Input = P::Input;
    type State = ForallState<P::State>;

    fn n_registers(&self) -> usize {
        self.inner.n_registers()
    }

    fn init_state(&self) -> Self::State {
        ForallState::Running(self.inner.init_state(), false)
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        !matches!(state, ForallState::Failed)
    }

    fn step(&self, state: &Self::State, input: P::Input, cmps: RegCmps) -> (Self::State, LoadMask) {
        match state {
            ForallState::Failed => (ForallState::Failed, cmps.greater()),
            ForallState::Running(s, bad_leaf_flag) => {
                if !input.is_open() && *bad_leaf_flag {
                    return (ForallState::Failed, cmps.greater());
                }
                let (next, load) = self.inner.step(s, input, cmps);
                let flag = input.is_open() && !self.inner.is_accepting(&next);
                (ForallState::Running(next, flag), load)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_automata::{Alphabet, Letter};
    use st_trees::encode::markup_encode;
    use st_trees::generate;

    /// Example 2.2 as a handwritten program: all `a`-labelled nodes at the
    /// same depth.  One register; first `a` stores the depth, later `a`s
    /// compare.  Non-regular, stackless.
    struct AllAsSameDepth {
        a: Letter,
    }

    #[derive(Clone, PartialEq, Debug)]
    enum S {
        NoAYet,
        Tracking,
        Reject,
    }

    impl DraProgram for AllAsSameDepth {
        type Input = Tag;
        type State = S;

        fn n_registers(&self) -> usize {
            1
        }

        fn init_state(&self) -> S {
            S::NoAYet
        }

        fn is_accepting(&self, s: &S) -> bool {
            !matches!(s, S::Reject)
        }

        fn step(&self, s: &S, input: Tag, cmps: RegCmps) -> (S, LoadMask) {
            match (s, input) {
                (S::NoAYet, Tag::Open(l)) if l == self.a => (S::Tracking, 1),
                (S::Tracking, Tag::Open(l)) if l == self.a => {
                    if cmps.is_equal(0) {
                        (S::Tracking, 0)
                    } else {
                        (S::Reject, 0)
                    }
                }
                (S::Reject, _) => (S::Reject, 0),
                (other, _) => (other.clone(), 0),
            }
        }
    }

    #[test]
    fn reg_cmps_roundtrips() {
        use Ordering::{Equal, Greater, Less};
        let all = [Less, Equal, Greater];
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    let v = [a, b, c];
                    let r = RegCmps::from_orderings(&v);
                    assert_eq!(r.to_orderings(3), v);
                    assert_eq!((r.ordering(0), r.ordering(1), r.ordering(2)), (a, b, c));
                    assert_eq!(RegCmps::from_code(r.to_code(3), 3), r);
                    let (lo, hi) = r.split_at(1);
                    assert_eq!(lo.ordering(0), a);
                    assert_eq!((hi.ordering(0), hi.ordering(1)), (b, c));
                }
            }
        }
    }

    #[test]
    fn reg_cmps_masks_agree_with_compute() {
        let regs = [3i64, 5, 7, 5, 0];
        let r = RegCmps::compute(&regs, 5);
        assert_eq!(r.equal(), 0b01010);
        assert_eq!(r.greater(), 0b00100);
        assert_eq!(r.less(), 0b10001);
        assert!(r.is_less(0) && r.is_equal(1) && r.is_greater(2));
    }

    #[test]
    fn runner_spills_past_small_register_file() {
        // A program with 12 registers: loads register 11 at the root, then
        // requires it to compare Equal at every later depth-1 opening.
        struct WideTracker;
        impl DraProgram for WideTracker {
            type Input = Tag;
            type State = (bool, bool);
            fn n_registers(&self) -> usize {
                12
            }
            fn init_state(&self) -> (bool, bool) {
                (false, true)
            }
            fn is_accepting(&self, s: &(bool, bool)) -> bool {
                s.1
            }
            fn step(
                &self,
                s: &(bool, bool),
                input: Tag,
                cmps: RegCmps,
            ) -> ((bool, bool), LoadMask) {
                match (s, input) {
                    ((false, ok), Tag::Open(_)) => ((true, *ok), 1 << 11),
                    ((true, ok), Tag::Open(_)) => ((true, *ok && cmps.is_less(11)), 0),
                    (s, _) => (*s, 0),
                }
            }
        }
        let g = Alphabet::of_chars("a");
        let a = g.letter("a").unwrap();
        let deep = vec![Tag::Open(a), Tag::Open(a), Tag::Close(a), Tag::Close(a)];
        assert!(accepts(&WideTracker, &deep).unwrap());
        let wide = vec![Tag::Open(a), Tag::Close(a), Tag::Open(a), Tag::Close(a)];
        assert!(!accepts(&WideTracker, &wide).unwrap());
    }

    fn tags_of(term: &str) -> (Alphabet, Vec<Tag>) {
        let (g, t) = st_trees::json::parse_term_tree(term.as_bytes()).unwrap();
        let tags = markup_encode(&t);
        (g, tags)
    }

    #[test]
    fn example_2_2_all_as_same_depth() {
        let (g, tags) = tags_of("b{a{}b{a{}}}");
        let p = AllAsSameDepth {
            a: g.letter("a").unwrap(),
        };
        // a's at depths 2 and 3: reject.
        assert!(!accepts(&p, &tags).unwrap());

        let (g2, tags2) = tags_of("b{a{}b{}a{}}");
        let p2 = AllAsSameDepth {
            a: g2.letter("a").unwrap(),
        };
        // a's both at depth 2: accept.
        assert!(accepts(&p2, &tags2).unwrap());

        // No a at all: accept (use a letter that never occurs).
        let (_, tags3) = tags_of("b{b{}}");
        let p3 = AllAsSameDepth { a: Letter(99) };
        assert!(accepts(&p3, &tags3).unwrap());
    }

    #[test]
    fn runner_rejects_too_many_registers() {
        struct Greedy;
        impl DraProgram for Greedy {
            type Input = Tag;
            type State = ();
            fn n_registers(&self) -> usize {
                65
            }
            fn init_state(&self) {}
            fn is_accepting(&self, _: &()) -> bool {
                false
            }
            fn step(&self, _: &(), _: Tag, _: RegCmps) -> ((), LoadMask) {
                ((), 0)
            }
        }
        assert!(matches!(
            DraRunner::new(&Greedy),
            Err(CoreError::TooManyRegisters { requested: 65 })
        ));
    }

    #[test]
    fn tag_dfa_program_runs_like_the_dfa() {
        // DFA over Γ ∪ Γ̄ for Γ = {a}: accept iff the last tag read was the
        // closing ā (letters: 0 = a, 1 = ā).
        let d = st_automata::Dfa::from_rows(2, 0, vec![false, true], vec![vec![0, 1], vec![0, 1]])
            .unwrap();
        let p = TagDfaProgram::new(&d);
        let g = Alphabet::of_chars("a");
        let a = g.letter("a").unwrap();
        let tags = vec![Tag::Open(a), Tag::Open(a), Tag::Close(a), Tag::Close(a)];
        assert!(accepts(&p, &tags).unwrap());
        assert!(!accepts(&p, &tags[..2]).unwrap());
    }

    #[test]
    fn preselect_counts_nodes_in_document_order() {
        // Select every node (always-accepting 1-state DFA over tags).
        let d = st_automata::Dfa::trivial(2, true);
        let p = TagDfaProgram::new(&d);
        let g = Alphabet::of_chars("a");
        let t = generate::wide(g.letter("a").unwrap(), g.letter("a").unwrap(), 3);
        let tags = markup_encode(&t);
        assert_eq!(preselect(&p, &tags).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn exists_and_forall_wrappers() {
        // Inner: select nodes labelled b (DFA over tags: accept after
        // reading opening b). Γ = {a, b}: letters 0=a, 1=b, 2=ā, 3=b̄.
        let d = st_automata::Dfa::from_rows(
            4,
            0,
            vec![false, true],
            vec![vec![0, 1, 0, 0], vec![0, 1, 0, 0]],
        )
        .unwrap();
        let inner = TagDfaProgram::new(&d);
        let (g, tags) = tags_of("a{b{a{}}}"); // b is not a leaf
        assert!(!accepts(&ExistsAcceptor::new(TagDfaProgram::new(&d)), &tags).unwrap());
        let (_, tags2) = tags_of("a{b{}}"); // b is a leaf
        assert!(accepts(&ExistsAcceptor::new(TagDfaProgram::new(&d)), &tags2).unwrap());
        // Forall: leaf a at depth 3 in first tree is not selected → reject.
        assert!(!accepts(&ForallAcceptor::new(inner), &tags).unwrap());
        // Second tree: only leaf is b → accept.
        assert!(accepts(&ForallAcceptor::new(TagDfaProgram::new(&d)), &tags2).unwrap());
        let _ = g;
    }
}
