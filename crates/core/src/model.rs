//! The depth-register automaton model (Definition 2.1).
//!
//! A *depth-register automaton* is a deterministic machine over the markup
//! alphabet Γ ∪ Γ̄ (or the term alphabet Γ ∪ {◁}) equipped with
//!
//! * one **input-driven counter** holding the current depth: +1 on opening
//!   tags, −1 on closing tags — the machine cannot influence it;
//! * a bounded set of **registers** holding previously stored depths, whose
//!   only observable is the *order comparison* of each register against the
//!   current depth (the sets X≤ and X≥ of Definition 2.1); a transition may
//!   *load* the current depth into any subset of registers.
//!
//! The crate enforces this honesty architecturally: a [`DraProgram`] never
//! sees depth values.  Its `step` receives the input symbol and one
//! [`Ordering`] per register (register value vs. the **new** depth dᵢ,
//! exactly as in Definition 2.1) and returns the next control state plus a
//! [`LoadMask`] of registers to overwrite with dᵢ.  The [`DraRunner`] owns
//! the counter and the register file, so no program can smuggle arithmetic
//! on depths into its control logic.

use std::cmp::Ordering;

use st_automata::{Dfa, Tag};
use st_trees::encode::TermEvent;

use crate::error::CoreError;

/// Maximum register count supported by [`DraRunner`] (masks are `u64`).
pub const MAX_REGISTERS: usize = 64;

/// Bitmask of registers to load with the current depth (bit ξ = register ξ).
pub type LoadMask = u64;

/// An input symbol of a streamed encoding: drives the depth counter.
pub trait StreamSymbol: Copy {
    /// +1 for opening tags, −1 for closing tags.
    fn depth_delta(self) -> i64;

    /// Whether this symbol opens a node (pre-selection happens here).
    fn is_open(self) -> bool {
        self.depth_delta() > 0
    }
}

impl StreamSymbol for Tag {
    fn depth_delta(self) -> i64 {
        Tag::depth_delta(self)
    }
}

impl StreamSymbol for TermEvent {
    fn depth_delta(self) -> i64 {
        TermEvent::depth_delta(self)
    }
}

/// A depth-register automaton, expressed against the honest interface.
///
/// Implementations range from explicitly tabulated machines
/// ([`crate::table::TableDra`]) to the structured programs produced by the
/// Lemma 3.8 compiler ([`crate::har::HarMarkupProgram`]).  The control-state type
/// must range over a *finite* set for the implementation to be a genuine
/// DRA; every implementation in this crate documents its bound.
pub trait DraProgram {
    /// The encoding this program reads ([`Tag`] for markup, [`TermEvent`]
    /// for term).
    type Input: StreamSymbol;

    /// Control state.  Must range over a finite set.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Number of registers Ξ (≤ [`MAX_REGISTERS`]).
    fn n_registers(&self) -> usize;

    /// The initial control state q_init.
    fn init_state(&self) -> Self::State;

    /// Whether a control state is accepting.
    fn is_accepting(&self, state: &Self::State) -> bool;

    /// One transition.  `cmps[ξ]` is the ordering of register ξ's value
    /// against the **new** depth dᵢ (`Less` ⇔ η(ξ) < dᵢ, i.e. ξ ∈ X≤ \ X≥).
    /// Returns the next state and the set Y of registers to load with dᵢ.
    fn step(
        &self,
        state: &Self::State,
        input: Self::Input,
        cmps: &[Ordering],
    ) -> (Self::State, LoadMask);
}

/// Executes a [`DraProgram`], owning the depth counter and register file.
///
/// A configuration (q, d, η) of Definition 2.1 is split between the program
/// state `q` (held here) and the numeric parts `d`, `η` (held here, never
/// shown to the program).  Registers are initialized to 0 and the counter
/// starts at 0, matching the paper's initial configuration.
#[derive(Clone, Debug)]
pub struct DraRunner<'p, P: DraProgram> {
    program: &'p P,
    state: P::State,
    depth: i64,
    registers: Vec<i64>,
    cmps: Vec<Ordering>,
}

impl<'p, P: DraProgram> DraRunner<'p, P> {
    /// Starts a run in the initial configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyRegisters`] if the program wants more than 64.
    pub fn new(program: &'p P) -> Result<Self, CoreError> {
        let n = program.n_registers();
        if n > MAX_REGISTERS {
            return Err(CoreError::TooManyRegisters { requested: n });
        }
        Ok(Self {
            program,
            state: program.init_state(),
            depth: 0,
            registers: vec![0; n],
            cmps: vec![Ordering::Equal; n],
        })
    }

    /// Processes one symbol; returns whether the new state is accepting.
    pub fn step(&mut self, input: P::Input) -> bool {
        self.depth += input.depth_delta();
        for (c, &r) in self.cmps.iter_mut().zip(&self.registers) {
            *c = r.cmp(&self.depth);
        }
        let (next, load) = self.program.step(&self.state, input, &self.cmps);
        if load != 0 {
            for (xi, r) in self.registers.iter_mut().enumerate() {
                if load >> xi & 1 == 1 {
                    *r = self.depth;
                }
            }
        }
        self.state = next;
        self.program.is_accepting(&self.state)
    }

    /// Current control state.
    pub fn state(&self) -> &P::State {
        &self.state
    }

    /// Current depth (diagnostics; the *program* never sees this).
    pub fn depth(&self) -> i64 {
        self.depth
    }

    /// Current register values (diagnostics only).
    pub fn registers(&self) -> &[i64] {
        &self.registers
    }

    /// Whether the current configuration is accepting.
    pub fn is_accepting(&self) -> bool {
        self.program.is_accepting(&self.state)
    }
}

/// Replays a stream through the program and verifies the *restricted*
/// discipline of Section 2.2 dynamically: every transition must overwrite
/// all registers whose value strictly exceeds the current depth
/// (X≥ \ X≤ ⊆ Y).  Returns `false` at the first violating transition.
///
/// Restricted depth-register automata recognize only regular tree
/// languages (Proposition 2.3); the paper conjectures they capture all
/// regular stackless languages and notes all of its constructions are
/// restricted — [`crate::har`] and [`crate::pattern`] programs pass this
/// check by design, while Example 2.2's table automaton does not.
pub fn check_restricted_run<P: DraProgram>(
    program: &P,
    stream: &[P::Input],
) -> Result<bool, CoreError> {
    let n = program.n_registers();
    if n > MAX_REGISTERS {
        return Err(CoreError::TooManyRegisters { requested: n });
    }
    let mut state = program.init_state();
    let mut depth: i64 = 0;
    let mut registers = vec![0i64; n];
    let mut cmps = vec![Ordering::Equal; n];
    for &sym in stream {
        depth += sym.depth_delta();
        for (c, &r) in cmps.iter_mut().zip(&registers) {
            *c = r.cmp(&depth);
        }
        let (next, load) = program.step(&state, sym, &cmps);
        for (xi, &c) in cmps.iter().enumerate() {
            if c == Ordering::Greater && load >> xi & 1 == 0 {
                return Ok(false);
            }
        }
        for (xi, r) in registers.iter_mut().enumerate() {
            if load >> xi & 1 == 1 {
                *r = depth;
            }
        }
        state = next;
    }
    Ok(true)
}

/// Runs the program over a full stream and reports final acceptance (the
/// recognition semantics of Section 2.2).
pub fn accepts<P: DraProgram>(program: &P, stream: &[P::Input]) -> Result<bool, CoreError> {
    let mut runner = DraRunner::new(program)?;
    let mut accepting = runner.is_accepting();
    for &sym in stream {
        accepting = runner.step(sym);
    }
    Ok(accepting)
}

/// Runs the program over a full stream with pre-selection semantics
/// (Section 2.3): returns document-order ids of nodes whose *opening*
/// symbol left the automaton in an accepting state.
pub fn preselect<P: DraProgram>(program: &P, stream: &[P::Input]) -> Result<Vec<usize>, CoreError> {
    let mut runner = DraRunner::new(program)?;
    let mut selected = Vec::new();
    let mut node = 0usize;
    for &sym in stream {
        let accepting = runner.step(sym);
        if sym.is_open() {
            if accepting {
                selected.push(node);
            }
            node += 1;
        }
    }
    Ok(selected)
}

/// A plain DFA over the markup tag alphabet, viewed as a (register-free)
/// depth-register automaton.  This is the paper's observation that DRAs
/// with Ξ = ∅ are just DFAs over Γ ∪ Γ̄.
#[derive(Clone, Debug)]
pub struct TagDfaProgram<'a> {
    dfa: &'a Dfa,
    n_base_letters: usize,
}

impl<'a> TagDfaProgram<'a> {
    /// Wraps a DFA whose letters are tag indices (`0..n` opening, `n..2n`
    /// closing for `|Γ| = n`).
    ///
    /// # Panics
    ///
    /// Panics if the DFA's letter count is odd.
    pub fn new(dfa: &'a Dfa) -> Self {
        assert!(
            dfa.n_letters().is_multiple_of(2),
            "a markup DFA needs an even letter count (Γ ∪ Γ̄)"
        );
        Self {
            dfa,
            n_base_letters: dfa.n_letters() / 2,
        }
    }
}

impl DraProgram for TagDfaProgram<'_> {
    type Input = Tag;
    type State = usize;

    fn n_registers(&self) -> usize {
        0
    }

    fn init_state(&self) -> usize {
        self.dfa.init()
    }

    fn is_accepting(&self, state: &usize) -> bool {
        self.dfa.is_accepting(*state)
    }

    fn step(&self, state: &usize, input: Tag, _cmps: &[Ordering]) -> (usize, LoadMask) {
        let letter = match input {
            Tag::Open(l) => l.index(),
            Tag::Close(l) => self.n_base_letters + l.index(),
        };
        (self.dfa.step(*state, letter), 0)
    }
}

/// A plain DFA over the term alphabet Γ ∪ {◁} (letters `0..n` opening, `n`
/// the universal close), viewed as a register-free DRA over term events.
#[derive(Clone, Debug)]
pub struct TermDfaProgram<'a> {
    dfa: &'a Dfa,
    close_letter: usize,
}

impl<'a> TermDfaProgram<'a> {
    /// Wraps a DFA with `|Γ| + 1` letters, the last being ◁.
    pub fn new(dfa: &'a Dfa) -> Self {
        assert!(dfa.n_letters() >= 1);
        Self {
            dfa,
            close_letter: dfa.n_letters() - 1,
        }
    }
}

impl DraProgram for TermDfaProgram<'_> {
    type Input = TermEvent;
    type State = usize;

    fn n_registers(&self) -> usize {
        0
    }

    fn init_state(&self) -> usize {
        self.dfa.init()
    }

    fn is_accepting(&self, state: &usize) -> bool {
        self.dfa.is_accepting(*state)
    }

    fn step(&self, state: &usize, input: TermEvent, _cmps: &[Ordering]) -> (usize, LoadMask) {
        let letter = match input {
            TermEvent::Open(l) => l.index(),
            TermEvent::Close => self.close_letter,
        };
        (self.dfa.step(*state, letter), 0)
    }
}

/// Mask of registers comparing `Greater` — the set a *restricted*
/// transition must reload (Section 2.2).  Sink states use this to keep
/// wrapped programs restricted.
fn greater_mask(cmps: &[Ordering]) -> LoadMask {
    let mut mask: LoadMask = 0;
    for (xi, &c) in cmps.iter().enumerate() {
        if c == Ordering::Greater {
            mask |= 1 << xi;
        }
    }
    mask
}

/// Wraps a node-selecting program into an acceptor of EL — the Theorem 3.1
/// "(1) ⇒ (2)" construction: remember whether the previous symbol was an
/// opening tag that left the inner automaton accepting; if so and a closing
/// tag arrives (the node was a leaf, its path is in L), jump to an
/// all-accepting sink.
#[derive(Clone, Debug)]
pub struct ExistsAcceptor<P> {
    inner: P,
}

/// State of [`ExistsAcceptor`].
#[derive(Clone, PartialEq, Debug)]
pub enum ExistsState<S> {
    /// Still searching; the flag records "previous symbol was an opening
    /// tag and the inner state is accepting".
    Running(S, bool),
    /// Found a selected leaf: accept everything from here on.
    Found,
}

impl<P> ExistsAcceptor<P> {
    /// Wraps an inner pre-selecting program.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }
}

impl<P: DraProgram> DraProgram for ExistsAcceptor<P> {
    type Input = P::Input;
    type State = ExistsState<P::State>;

    fn n_registers(&self) -> usize {
        self.inner.n_registers()
    }

    fn init_state(&self) -> Self::State {
        ExistsState::Running(self.inner.init_state(), false)
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        matches!(state, ExistsState::Found)
    }

    fn step(
        &self,
        state: &Self::State,
        input: P::Input,
        cmps: &[Ordering],
    ) -> (Self::State, LoadMask) {
        match state {
            ExistsState::Found => (ExistsState::Found, greater_mask(cmps)),
            ExistsState::Running(s, leaf_flag) => {
                if !input.is_open() && *leaf_flag {
                    return (ExistsState::Found, greater_mask(cmps));
                }
                let (next, load) = self.inner.step(s, input, cmps);
                let flag = input.is_open() && self.inner.is_accepting(&next);
                (ExistsState::Running(next, flag), load)
            }
        }
    }
}

/// Wraps a node-selecting program into an acceptor of AL — the dual
/// Theorem 3.2 construction: if a leaf closes while the inner automaton
/// rejected its opening, the tree has a branch outside L; jump to an
/// all-rejecting sink.
#[derive(Clone, Debug)]
pub struct ForallAcceptor<P> {
    inner: P,
}

/// State of [`ForallAcceptor`].
#[derive(Clone, PartialEq, Debug)]
pub enum ForallState<S> {
    /// No bad leaf yet; the flag records "previous symbol was an opening
    /// tag and the inner state is rejecting".
    Running(S, bool),
    /// Found a rejected leaf: reject everything from here on.
    Failed,
}

impl<P> ForallAcceptor<P> {
    /// Wraps an inner pre-selecting program.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }
}

impl<P: DraProgram> DraProgram for ForallAcceptor<P> {
    type Input = P::Input;
    type State = ForallState<P::State>;

    fn n_registers(&self) -> usize {
        self.inner.n_registers()
    }

    fn init_state(&self) -> Self::State {
        ForallState::Running(self.inner.init_state(), false)
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        !matches!(state, ForallState::Failed)
    }

    fn step(
        &self,
        state: &Self::State,
        input: P::Input,
        cmps: &[Ordering],
    ) -> (Self::State, LoadMask) {
        match state {
            ForallState::Failed => (ForallState::Failed, greater_mask(cmps)),
            ForallState::Running(s, bad_leaf_flag) => {
                if !input.is_open() && *bad_leaf_flag {
                    return (ForallState::Failed, greater_mask(cmps));
                }
                let (next, load) = self.inner.step(s, input, cmps);
                let flag = input.is_open() && !self.inner.is_accepting(&next);
                (ForallState::Running(next, flag), load)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_automata::{Alphabet, Letter};
    use st_trees::encode::markup_encode;
    use st_trees::generate;

    /// Example 2.2 as a handwritten program: all `a`-labelled nodes at the
    /// same depth.  One register; first `a` stores the depth, later `a`s
    /// compare.  Non-regular, stackless.
    struct AllAsSameDepth {
        a: Letter,
    }

    #[derive(Clone, PartialEq, Debug)]
    enum S {
        NoAYet,
        Tracking,
        Reject,
    }

    impl DraProgram for AllAsSameDepth {
        type Input = Tag;
        type State = S;

        fn n_registers(&self) -> usize {
            1
        }

        fn init_state(&self) -> S {
            S::NoAYet
        }

        fn is_accepting(&self, s: &S) -> bool {
            !matches!(s, S::Reject)
        }

        fn step(&self, s: &S, input: Tag, cmps: &[Ordering]) -> (S, LoadMask) {
            match (s, input) {
                (S::NoAYet, Tag::Open(l)) if l == self.a => (S::Tracking, 1),
                (S::Tracking, Tag::Open(l)) if l == self.a => {
                    if cmps[0] == Ordering::Equal {
                        (S::Tracking, 0)
                    } else {
                        (S::Reject, 0)
                    }
                }
                (S::Reject, _) => (S::Reject, 0),
                (other, _) => (other.clone(), 0),
            }
        }
    }

    fn tags_of(term: &str) -> (Alphabet, Vec<Tag>) {
        let (g, t) = st_trees::json::parse_term_tree(term.as_bytes()).unwrap();
        let tags = markup_encode(&t);
        (g, tags)
    }

    #[test]
    fn example_2_2_all_as_same_depth() {
        let (g, tags) = tags_of("b{a{}b{a{}}}");
        let p = AllAsSameDepth {
            a: g.letter("a").unwrap(),
        };
        // a's at depths 2 and 3: reject.
        assert!(!accepts(&p, &tags).unwrap());

        let (g2, tags2) = tags_of("b{a{}b{}a{}}");
        let p2 = AllAsSameDepth {
            a: g2.letter("a").unwrap(),
        };
        // a's both at depth 2: accept.
        assert!(accepts(&p2, &tags2).unwrap());

        // No a at all: accept (use a letter that never occurs).
        let (_, tags3) = tags_of("b{b{}}");
        let p3 = AllAsSameDepth { a: Letter(99) };
        assert!(accepts(&p3, &tags3).unwrap());
    }

    #[test]
    fn runner_rejects_too_many_registers() {
        struct Greedy;
        impl DraProgram for Greedy {
            type Input = Tag;
            type State = ();
            fn n_registers(&self) -> usize {
                65
            }
            fn init_state(&self) {}
            fn is_accepting(&self, _: &()) -> bool {
                false
            }
            fn step(&self, _: &(), _: Tag, _: &[Ordering]) -> ((), LoadMask) {
                ((), 0)
            }
        }
        assert!(matches!(
            DraRunner::new(&Greedy),
            Err(CoreError::TooManyRegisters { requested: 65 })
        ));
    }

    #[test]
    fn tag_dfa_program_runs_like_the_dfa() {
        // DFA over Γ ∪ Γ̄ for Γ = {a}: accept iff the last tag read was the
        // closing ā (letters: 0 = a, 1 = ā).
        let d = st_automata::Dfa::from_rows(2, 0, vec![false, true], vec![vec![0, 1], vec![0, 1]])
            .unwrap();
        let p = TagDfaProgram::new(&d);
        let g = Alphabet::of_chars("a");
        let a = g.letter("a").unwrap();
        let tags = vec![Tag::Open(a), Tag::Open(a), Tag::Close(a), Tag::Close(a)];
        assert!(accepts(&p, &tags).unwrap());
        assert!(!accepts(&p, &tags[..2]).unwrap());
    }

    #[test]
    fn preselect_counts_nodes_in_document_order() {
        // Select every node (always-accepting 1-state DFA over tags).
        let d = st_automata::Dfa::trivial(2, true);
        let p = TagDfaProgram::new(&d);
        let g = Alphabet::of_chars("a");
        let t = generate::wide(g.letter("a").unwrap(), g.letter("a").unwrap(), 3);
        let tags = markup_encode(&t);
        assert_eq!(preselect(&p, &tags).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn exists_and_forall_wrappers() {
        // Inner: select nodes labelled b (DFA over tags: accept after
        // reading opening b). Γ = {a, b}: letters 0=a, 1=b, 2=ā, 3=b̄.
        let d = st_automata::Dfa::from_rows(
            4,
            0,
            vec![false, true],
            vec![vec![0, 1, 0, 0], vec![0, 1, 0, 0]],
        )
        .unwrap();
        let inner = TagDfaProgram::new(&d);
        let (g, tags) = tags_of("a{b{a{}}}"); // b is not a leaf
        assert!(!accepts(&ExistsAcceptor::new(TagDfaProgram::new(&d)), &tags).unwrap());
        let (_, tags2) = tags_of("a{b{}}"); // b is a leaf
        assert!(accepts(&ExistsAcceptor::new(TagDfaProgram::new(&d)), &tags2).unwrap());
        // Forall: leaf a at depth 3 in first tree is not selected → reject.
        assert!(!accepts(&ForallAcceptor::new(inner), &tags).unwrap());
        // Second tree: only leaf is b → accept.
        assert!(accepts(&ForallAcceptor::new(TagDfaProgram::new(&d)), &tags2).unwrap());
        let _ = g;
    }
}
