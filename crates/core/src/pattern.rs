//! Proposition 2.8: descendent patterns are stackless.
//!
//! A *descendent pattern* π is a finite tree over Γ; a tree T contains π if
//! π's nodes map into T preserving labels and sending children to
//! descendants.  The paper proves containment is stackless by a recursive
//! construction: search for a **minimal** candidate node for the pattern
//! root (one without a same-label ancestor candidate), run the child
//! matchers inside the candidate's subtree, and restart when the candidate
//! closes unmatched — one register per pattern node remembers its current
//! candidate's depth.
//!
//! [`PatternProgram`] implements that construction against the honest DRA
//! interface: the control state is the vector of per-pattern-node statuses
//! (Idle / Scanning / Running / Success — a finite set of size 4^|π|), the
//! register file holds one candidate depth per pattern node, and the only
//! depth information used is the comparison of each register against the
//! current depth (to detect "my candidate just closed").
//!
//! [`contains`] is the DOM oracle used to validate the program.

use st_automata::{Letter, Tag};
use st_trees::tree::{NodeId, Tree};

use crate::model::{DraProgram, LoadMask, RegCmps};

/// A descendent pattern: a tree over Γ whose edges mean *descendant*.
#[derive(Clone, Debug)]
pub struct DescendantPattern {
    tree: Tree,
}

impl DescendantPattern {
    /// Wraps a pattern tree.
    pub fn new(tree: Tree) -> DescendantPattern {
        DescendantPattern { tree }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Number of pattern nodes (= registers of the compiled program).
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Patterns are trees, hence never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// DOM oracle: does `tree` contain the pattern?
///
/// Bottom-up DP: for each pattern node u, the set Sᵤ of tree nodes where u
/// can be matched; a node works for u iff the labels agree and every child
/// pattern matches at some **strict descendant**.
pub fn contains(tree: &Tree, pattern: &DescendantPattern) -> bool {
    let pt = &pattern.tree;
    let n = tree.len();
    // Process pattern nodes in reverse document order (children first).
    let mut matchable: Vec<Vec<bool>> = vec![Vec::new(); pt.len()];
    for u in pt.nodes().collect::<Vec<_>>().into_iter().rev() {
        let label = pt.label(u);
        // has_desc_match[v]: some strict descendant of v is in S_c.
        let child_sets: Vec<Vec<bool>> = pt
            .children(u)
            .map(|c| descendant_closure(tree, &matchable[c.index()]))
            .collect();
        let mut s = vec![false; n];
        for v in tree.nodes() {
            if tree.label(v) != label {
                continue;
            }
            if child_sets.iter().all(|d| d[v.index()]) {
                s[v.index()] = true;
            }
        }
        matchable[u.index()] = s;
    }
    matchable[pt.root().index()].iter().any(|&b| b)
}

/// DOM oracle for **strict** containment (Example 2.9): a matching must
/// additionally reflect descendancy — `h(v)` below `h(u)` forces `v` below
/// `u` in the pattern.  Strict containment is *not* stackless (Example
/// 2.9); this oracle is the ground truth for the fooling demonstrations.
///
/// Backtracking search over label-compatible assignments with forward
/// pruning; patterns are small, so this is fine for test-sized trees.
pub fn strictly_contains(tree: &Tree, pattern: &DescendantPattern) -> bool {
    let pt = &pattern.tree;
    let pattern_nodes: Vec<NodeId> = pt.nodes().collect(); // document order
    let mut assignment: Vec<Option<NodeId>> = vec![None; pt.len()];

    // is_ancestor via root paths: precompute ancestor lists per tree node.
    let is_strict_desc = |anc: NodeId, desc: NodeId| -> bool {
        let mut cur = tree.parent(desc);
        while let Some(u) = cur {
            if u == anc {
                return true;
            }
            cur = tree.parent(u);
        }
        false
    };

    fn backtrack(
        idx: usize,
        pattern_nodes: &[NodeId],
        pt: &Tree,
        tree: &Tree,
        assignment: &mut Vec<Option<NodeId>>,
        is_strict_desc: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> bool {
        if idx == pattern_nodes.len() {
            return true;
        }
        let u = pattern_nodes[idx];
        for v in tree.nodes() {
            if tree.label(v) != pt.label(u) {
                continue;
            }
            // Child → strict descendant for the already-assigned parent.
            if let Some(pu) = pt.parent(u) {
                let hp = assignment[pu.index()].expect("parents assigned first");
                if !is_strict_desc(hp, v) {
                    continue;
                }
            }
            // Reflection: against every assigned node.
            let mut ok = true;
            for (w_idx, hw) in assignment.iter().enumerate() {
                let Some(hw) = hw else { continue };
                let w = NodeId(w_idx as u32);
                if is_strict_desc(*hw, v) && !pattern_is_desc(pt, w, u) {
                    ok = false;
                    break;
                }
                if is_strict_desc(v, *hw) && !pattern_is_desc(pt, u, w) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            assignment[u.index()] = Some(v);
            if backtrack(idx + 1, pattern_nodes, pt, tree, assignment, is_strict_desc) {
                return true;
            }
            assignment[u.index()] = None;
        }
        false
    }

    fn pattern_is_desc(pt: &Tree, anc: NodeId, desc: NodeId) -> bool {
        let mut cur = pt.parent(desc);
        while let Some(u) = cur {
            if u == anc {
                return true;
            }
            cur = pt.parent(u);
        }
        false
    }

    backtrack(
        0,
        &pattern_nodes,
        pt,
        tree,
        &mut assignment,
        &is_strict_desc,
    )
}

/// `out[v]` = some strict descendant of `v` satisfies `set`.
fn descendant_closure(tree: &Tree, set: &[bool]) -> Vec<bool> {
    let mut out = vec![false; tree.len()];
    // Nodes in reverse document order: children processed before parents.
    for v in tree.nodes().collect::<Vec<_>>().into_iter().rev() {
        let mut any = false;
        for c in tree.children(v) {
            if set[c.index()] || out[c.index()] {
                any = true;
                break;
            }
        }
        out[v.index()] = any;
    }
    out
}

/// Status of one pattern node's matcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Status {
    /// Parent has no candidate: not looking.
    Idle = 0,
    /// Looking for a minimal candidate with my label.
    Scanning = 1,
    /// Candidate found (its depth is in my register); children active.
    Running = 2,
    /// Matched; sticky.
    Success = 3,
}

/// Maximum pattern size the packed control state supports.
pub const MAX_PATTERN_NODES: usize = 32;

/// Control state: one [`Status`] per pattern node, packed two bits each
/// into a word so transitions are branch-plus-mask cheap (the state set
/// has at most 4^|π| elements — finite, as Proposition 2.8 requires).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PatternState(u64);

impl PatternState {
    #[inline]
    fn get(self, u: usize) -> Status {
        match self.0 >> (2 * u) & 0b11 {
            0 => Status::Idle,
            1 => Status::Scanning,
            2 => Status::Running,
            _ => Status::Success,
        }
    }

    #[inline]
    fn set(&mut self, u: usize, status: Status) {
        self.0 = (self.0 & !(0b11 << (2 * u))) | ((status as u64) << (2 * u));
    }
}

/// The Proposition 2.8 matcher as a depth-register program.
#[derive(Clone, Debug)]
pub struct PatternProgram {
    /// Pattern labels in pattern-node order.
    labels: Vec<Letter>,
    /// Parent of each pattern node.
    parent: Vec<Option<usize>>,
    /// Children of each pattern node.
    children: Vec<Vec<usize>>,
}

impl PatternProgram {
    /// Compiles a pattern into its stackless matcher.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::MalformedTable`] when the pattern exceeds
    /// [`MAX_PATTERN_NODES`] nodes (the packed state would overflow).
    pub fn new(pattern: &DescendantPattern) -> Result<PatternProgram, crate::CoreError> {
        if pattern.len() > MAX_PATTERN_NODES {
            return Err(crate::CoreError::MalformedTable {
                detail: format!(
                    "pattern has {} nodes; the packed matcher supports {}",
                    pattern.len(),
                    MAX_PATTERN_NODES
                ),
            });
        }
        let pt = pattern.tree();
        let labels = pt.nodes().map(|v| pt.label(v)).collect();
        let parent = pt
            .nodes()
            .map(|v| pt.parent(v).map(NodeId::index))
            .collect();
        let children = pt
            .nodes()
            .map(|v| pt.children(v).map(|c| c.index()).collect())
            .collect();
        Ok(PatternProgram {
            labels,
            parent,
            children,
        })
    }

    fn n_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Marks `u` Success and propagates completion upward.
    fn propagate_success(&self, statuses: &mut PatternState, mut u: usize) {
        loop {
            statuses.set(u, Status::Success);
            match self.parent[u] {
                Some(p)
                    if statuses.get(p) == Status::Running
                        && self.children[p]
                            .iter()
                            .all(|&c| statuses.get(c) == Status::Success) =>
                {
                    u = p;
                }
                _ => break,
            }
        }
    }

    /// Resets `u` to Scanning and every pattern descendant to Idle.
    fn reset_subtree(&self, statuses: &mut PatternState, u: usize) {
        statuses.set(u, Status::Scanning);
        let mut stack: Vec<usize> = self.children[u].clone();
        while let Some(v) = stack.pop() {
            statuses.set(v, Status::Idle);
            stack.extend(self.children[v].iter().copied());
        }
    }
}

impl DraProgram for PatternProgram {
    type Input = Tag;
    type State = PatternState;

    fn n_registers(&self) -> usize {
        self.n_nodes()
    }

    fn init_state(&self) -> PatternState {
        let mut s = PatternState::default();
        s.set(0, Status::Scanning); // the pattern root is always active
        s
    }

    fn is_accepting(&self, state: &PatternState) -> bool {
        state.get(0) == Status::Success
    }

    fn step(&self, state: &PatternState, input: Tag, cmps: RegCmps) -> (PatternState, LoadMask) {
        let mut next = *state;
        let mut load: LoadMask = 0;
        match input {
            Tag::Open(l) => {
                // Stack discipline for the static restrictedness check:
                // reload registers above the current depth (never the case
                // in real runs at opening tags).
                load |= cmps.greater();
                // Every matcher that was *already* Scanning adopts the node
                // as its candidate.  Adoption is decided against the
                // pre-step statuses: a child activated by its parent in
                // this very step must not adopt the parent's own candidate
                // (children match *strict* descendants).
                for u in 0..self.n_nodes() {
                    if state.get(u) == Status::Scanning && self.labels[u] == l {
                        if self.children[u].is_empty() {
                            self.propagate_success(&mut next, u);
                        } else {
                            next.set(u, Status::Running);
                            load |= 1 << u;
                            for &c in &self.children[u] {
                                next.set(c, Status::Scanning);
                            }
                        }
                    }
                }
            }
            Tag::Close(_) => {
                // A Running candidate whose stored depth is now strictly
                // above the current depth has closed unmatched: restart it.
                // Every register above the current depth is reloaded
                // (stack discipline, Section 2.2): such registers belong
                // to just-reset or long-inactive matchers, so the reload
                // is invisible to the matching logic but keeps the
                // program formally *restricted*.
                let mut stale = cmps.greater();
                load |= stale;
                while stale != 0 {
                    let u = stale.trailing_zeros() as usize;
                    stale &= stale - 1;
                    if next.get(u) == Status::Running {
                        self.reset_subtree(&mut next, u);
                    }
                }
            }
        }
        (next, load)
    }
}

/// Parses a pattern from term syntax (e.g. `b{b{a{}c{}}c{}}` for Fig. 1a)
/// against an existing alphabet.
///
/// # Errors
///
/// Propagates parse errors; labels must already be in `alphabet`.
pub fn parse_pattern(
    text: &str,
    alphabet: &st_automata::Alphabet,
) -> Result<DescendantPattern, st_trees::TreeError> {
    let mut events = Vec::new();
    for e in st_trees::json::TermScanner::new(text.as_bytes(), alphabet) {
        events.push(e?);
    }
    Ok(DescendantPattern::new(st_trees::encode::term_decode(
        &events,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::accepts;
    use st_automata::Alphabet;
    use st_trees::encode::markup_encode;
    use st_trees::generate;

    fn tree_with(g: &Alphabet, text: &str) -> st_trees::Tree {
        let events: Vec<_> = st_trees::json::TermScanner::new(text.as_bytes(), g)
            .map(|e| e.unwrap())
            .collect();
        st_trees::encode::term_decode(&events).unwrap()
    }

    fn check_agreement(pattern_text: &str, sigma: &str, seeds: std::ops::Range<u64>) {
        let g = Alphabet::of_chars(sigma);
        let pattern = parse_pattern(pattern_text, &g).unwrap();
        let program = PatternProgram::new(&pattern).unwrap();
        for seed in seeds {
            for (nodes, bias) in [(40, 0.3), (100, 0.6), (160, 0.85)] {
                let t = generate::random_attachment(&g, nodes, bias, seed);
                let tags = markup_encode(&t);
                assert_eq!(
                    accepts(&program, &tags).unwrap(),
                    contains(&t, &pattern),
                    "pattern {pattern_text} seed {seed} bias {bias} tree {}",
                    t.display(&g)
                );
            }
        }
    }

    #[test]
    fn single_node_pattern() {
        check_agreement("a{}", "ab", 0..10);
    }

    #[test]
    fn chain_patterns() {
        // Example 2.6: some a-labelled node with a b-labelled descendant.
        check_agreement("a{b{}}", "abc", 0..10);
        check_agreement("a{b{c{}}}", "abc", 0..10);
    }

    #[test]
    fn branching_patterns() {
        // Fig. 1a: b with a b-descendant (itself with a and c descendants)
        // and a c-descendant.
        check_agreement("b{b{a{}c{}}c{}}", "abc", 0..10);
        check_agreement("a{b{}c{}}", "abc", 0..10);
    }

    #[test]
    fn oracle_on_known_trees() {
        let g = Alphabet::of_chars("abc");
        let pattern = parse_pattern("a{b{}}", &g).unwrap();
        let yes = tree_with(&g, "a{c{b{}}}");
        assert!(contains(&yes, &pattern));
        let no = tree_with(&g, "b{a{}b{}}");
        assert!(!contains(&no, &pattern));
        // The a-node needs a b *descendant*, not sibling.
        let sib = tree_with(&g, "c{a{}b{}}");
        assert!(!contains(&sib, &pattern));
    }

    #[test]
    fn restart_after_failed_candidate() {
        // First a has no b below; second does.  The matcher must restart.
        let g = Alphabet::of_chars("abc");
        let pattern = parse_pattern("a{b{}}", &g).unwrap();
        let program = PatternProgram::new(&pattern).unwrap();
        let t = tree_with(&g, "c{a{c{}}a{b{}}}");
        assert!(accepts(&program, &markup_encode(&t)).unwrap());
        assert!(contains(&t, &pattern));
    }

    #[test]
    fn nested_candidates_are_covered_by_minimality() {
        // Outer a fails only if inner a fails too; matching inside the
        // inner a must be found by the outer candidate's child scan.
        let g = Alphabet::of_chars("abc");
        let pattern = parse_pattern("a{b{}}", &g).unwrap();
        let program = PatternProgram::new(&pattern).unwrap();
        let t = tree_with(&g, "a{a{b{}}}");
        assert!(accepts(&program, &markup_encode(&t)).unwrap());
    }

    #[test]
    fn exhaustive_small_trees() {
        let g = Alphabet::of_chars("ab");
        let pattern = parse_pattern("a{b{}}", &g).unwrap();
        let program = PatternProgram::new(&pattern).unwrap();
        for t in generate::enumerate_trees(&g, 5) {
            let tags = markup_encode(&t);
            assert_eq!(
                accepts(&program, &tags).unwrap(),
                contains(&t, &pattern),
                "tree {}",
                t.display(&g)
            );
        }
    }

    #[test]
    fn pattern_programs_are_restricted() {
        use crate::model::check_restricted_run;
        let g = Alphabet::of_chars("abc");
        let pattern = parse_pattern("b{b{a{}c{}}c{}}", &g).unwrap();
        let program = PatternProgram::new(&pattern).unwrap();
        for seed in 0..10 {
            let t = generate::random_attachment(&g, 120, 0.7, seed);
            let tags = markup_encode(&t);
            assert!(
                check_restricted_run(&program, &tags).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn register_budget_is_pattern_size() {
        let g = Alphabet::of_chars("abc");
        let pattern = parse_pattern("b{b{a{}c{}}c{}}", &g).unwrap();
        let program = PatternProgram::new(&pattern).unwrap();
        assert_eq!(program.n_registers(), 5);
    }
}
