//! Error type for the core crate.

use std::fmt;

/// Errors raised by compilers and decision procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A compiler was invoked on a language outside its class (e.g. the
    /// Lemma 3.5 compiler on a language that is not almost-reversible).
    ClassMismatch {
        /// The class the compiler requires.
        required: &'static str,
        /// A pair of states witnessing the violation, in the minimal
        /// automaton's numbering.
        witness: Option<(usize, usize)>,
    },
    /// A depth-register automaton exceeded the 64-register limit of the
    /// runner.
    TooManyRegisters {
        /// The requested register count.
        requested: usize,
    },
    /// A table-DRA description was malformed.
    MalformedTable {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// The fused byte engine's composite table (tag lexer × query DFA)
    /// would exceed its `u16` state budget.
    FusedTooLarge {
        /// The composite state count that was requested.
        states: usize,
    },
    /// A DTD was malformed (e.g. a production references an unknown
    /// symbol).
    MalformedDtd {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// A data-parallel chunk worker panicked.  The panic is caught at
    /// `JoinHandle::join` and converted into this error instead of
    /// unwinding through (or aborting) the caller; the sequential paths
    /// are deliberately *not* retried, so an engine bug cannot hide
    /// behind the certify-or-fallback machinery.
    WorkerFailed {
        /// The panic payload, when it carried a message.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ClassMismatch { required, witness } => {
                write!(f, "language is not {required}")?;
                if let Some((p, q)) = witness {
                    write!(f, " (witness states {p}, {q})")?;
                }
                Ok(())
            }
            CoreError::TooManyRegisters { requested } => {
                write!(
                    f,
                    "{requested} registers requested; the runner supports at most 64"
                )
            }
            CoreError::MalformedTable { detail } => write!(f, "malformed table DRA: {detail}"),
            CoreError::FusedTooLarge { states } => {
                write!(
                    f,
                    "fused byte engine needs {states} composite states; the dense table caps at 65536"
                )
            }
            CoreError::MalformedDtd { detail } => write!(f, "malformed DTD: {detail}"),
            CoreError::WorkerFailed { detail } => {
                write!(f, "a chunk worker panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}
