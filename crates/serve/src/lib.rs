//! Supervised multi-session serving runtime for the stackless
//! streamed-trees engines.
//!
//! The paper's session artifacts — O(1) (registerless) / O(depth)
//! (pushdown-fallback) checkpoints over the fused byte engine — make a
//! streaming query run *migratable*: its entire state fits in a small,
//! serializable [`st_core::session::EngineCheckpoint`].  This crate
//! builds the serving layer that exploits that:
//!
//! * [`ServeRuntime`] — a fixed worker pool plus a supervisor.  Requests
//!   ([`JobSpec`]) are admitted through a bounded queue, dispatched to
//!   workers, and processed through checkpointed
//!   [`st_core::session::EngineSession`]s.  When a worker panics or
//!   stalls, the supervisor replaces it and the victim's request resumes
//!   *from its last checkpoint* on a healthy worker — bounded retries,
//!   exponential backoff, and a typed terminal error
//!   ([`ServeError::Failed`]) when the budget is exhausted.
//! * Admission control and backpressure — a bounded submission queue
//!   (load shedding with [`ServeError::Overloaded`]), a service-level
//!   in-flight byte budget ([`ServeError::Rejected`]), per-session
//!   [`st_core::session::Limits`] inherited from the
//!   [`ServiceBudget`], and graceful degradation from the data-parallel
//!   chunked path to the sequential guarded path under pressure.
//! * A deterministic chaos harness (feature `chaos`) — seeded injection
//!   of worker panics, stalls, and corrupt segments, with a DOM-oracle
//!   checker (`run_soak`) asserting that completed
//!   requests are byte-for-byte right and failed requests are typed.
//!   Fault rolls are pure functions of `(seed, job, attempt, segment)`,
//!   so soak outcomes are identical across pool sizes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chaos;
pub mod config;
pub mod error;
pub mod frame;
pub mod net;
#[cfg(feature = "chaos")]
pub mod netchaos;
#[cfg(feature = "chaos")]
pub mod netsoak;
pub mod runtime;
#[cfg(feature = "chaos")]
pub mod soak;

pub use chaos::{ChaosConfig, Fault};
pub use config::{ServeConfig, ServiceBudget};
pub use error::{codes, FailureCause, ServeError};
pub use frame::{Frame, FrameError, FrameKind};
pub use net::{NetClient, NetConfig, NetError, NetResponse, NetServer, NetStats};
#[cfg(feature = "chaos")]
pub use netchaos::{NetChaosConfig, NetFault};
#[cfg(feature = "chaos")]
pub use netsoak::{
    run_net_soak, NetRequestOutcome, NetSoakConfig, NetSoakDivergence, NetSoakReport,
};
pub use runtime::{
    silence_chaos_panics, JobId, JobReport, JobSpec, MultiJobReport, MultiJobSpec, PathTaken,
    ServeRuntime, ServeStats,
};
#[cfg(feature = "chaos")]
pub use soak::{run_soak, RequestOutcome, SoakConfig, SoakDivergence, SoakReport};
