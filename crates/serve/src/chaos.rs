//! Deterministic fault injection.
//!
//! Faults are decided by a pure function of `(seed, job, attempt,
//! segment)` — never by wall-clock time, scheduling, or pool size — so a
//! chaos run is exactly reproducible from its seed, and the *same*
//! request sequence produces the *same* fault sequence whether it runs on
//! a 1-worker or an 8-worker pool.  That property is what lets the
//! determinism suite assert bitwise-identical results across pool sizes.
//!
//! Three fault families, mirroring the ways a serving deployment loses a
//! worker mid-document:
//!
//! * **Panic** — the worker thread panics at a segment boundary and dies.
//! * **Stall** — the worker sleeps past the supervisor's stall deadline;
//!   the supervisor abandons it and resumes the request elsewhere.
//! * **Corrupt segment** — the segment read fails its integrity check
//!   (as a checksummed transport would report); the attempt fails with a
//!   typed [`crate::FailureCause::SegmentCorrupted`].
//!
//! Because retries are keyed by a fresh `attempt` number, an injected
//! fault does not recur deterministically on the retry — which is exactly
//! the transient-fault shape the failover machinery exists for.

/// The fault (if any) injected at one `(job, attempt, segment)` point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No fault; process the segment normally.
    None,
    /// Panic at this segment boundary (the worker thread dies).
    Panic,
    /// Sleep through the supervisor's stall deadline, then continue (the
    /// supervisor will have abandoned this worker by then).
    Stall,
    /// The segment arrives corrupt; the integrity check fails it.
    Corrupt,
}

/// Seeded fault-injection rates.  Rates are per-mille per segment and
/// are drawn disjointly: at most one fault fires per segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Per-mille chance a segment boundary panics the worker.
    pub panic_per_mille: u16,
    /// Per-mille chance a segment stalls the worker past its deadline.
    pub stall_per_mille: u16,
    /// Per-mille chance a segment arrives corrupt.
    pub corrupt_per_mille: u16,
    /// How long an injected stall sleeps.  Must exceed the runtime's
    /// stall timeout, or the "stall" is just slow and never triggers
    /// failover.
    pub stall_ms: u64,
}

impl ChaosConfig {
    /// A chaos profile with moderate rates, suitable for soak tests.
    pub fn with_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_per_mille: 20,
            stall_per_mille: 10,
            corrupt_per_mille: 30,
            stall_ms: 150,
        }
    }

    /// The fault injected at this `(job, attempt, segment)` point.
    /// Deterministic: same inputs, same fault, regardless of pool size
    /// or scheduling.
    pub fn roll(&self, job: u64, attempt: u32, segment: u64) -> Fault {
        let h = mix(self.seed
            ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ segment.wrapping_mul(0x1656_67B1_9E37_79F9));
        let r = (h % 1000) as u16;
        if r < self.panic_per_mille {
            Fault::Panic
        } else if r < self.panic_per_mille + self.stall_per_mille {
            Fault::Stall
        } else if r < self.panic_per_mille + self.stall_per_mille + self.corrupt_per_mille {
            Fault::Corrupt
        } else {
            Fault::None
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_attempt_sensitive() {
        let c = ChaosConfig::with_seed(7);
        for job in 0..50u64 {
            for seg in 0..20u64 {
                assert_eq!(c.roll(job, 1, seg), c.roll(job, 1, seg));
            }
        }
        // Different attempts re-roll: some (job, segment) fault points
        // must clear on retry, or failover could never make progress.
        let mut cleared = 0;
        for job in 0..200u64 {
            for seg in 0..20u64 {
                if c.roll(job, 1, seg) != Fault::None && c.roll(job, 2, seg) == Fault::None {
                    cleared += 1;
                }
            }
        }
        assert!(cleared > 0, "retries never clear injected faults");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let c = ChaosConfig {
            seed: 42,
            panic_per_mille: 100,
            stall_per_mille: 0,
            corrupt_per_mille: 0,
            stall_ms: 0,
        };
        let n = 10_000u64;
        let panics = (0..n).filter(|&i| c.roll(i, 1, 0) == Fault::Panic).count();
        // 10% nominal; allow a generous band.
        assert!((500..2000).contains(&panics), "panics: {panics}");
    }
}
