//! Typed errors of the serving runtime.
//!
//! Every way a request can end short of success has a variant here, so
//! callers can tell load shedding from budget rejection from a request
//! that genuinely failed — and for failures, *why* the final attempt
//! failed and how many attempts were spent.

use std::fmt;

use st_core::session::SessionError;

/// Why one attempt at a request failed.  Retryable causes send the
/// request back to the queue (with exponential backoff, resuming from
/// its last checkpoint); terminal causes fail it immediately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The worker thread running the request panicked and died.
    WorkerPanic {
        /// The panic payload, when it carried a message.
        detail: String,
    },
    /// The worker stopped heartbeating past the supervisor's stall
    /// deadline and was abandoned.
    WorkerStall {
        /// How long the worker had been silent when it was abandoned.
        stalled_ms: u64,
    },
    /// A document segment failed its transport integrity check (the
    /// chaos harness injects these; a production transport would detect
    /// them with a checksum).
    SegmentCorrupted {
        /// Byte offset of the corrupt segment.
        offset: usize,
    },
    /// The engine returned a typed error: a parse error, a resource
    /// budget breach, or an engine-internal failure.
    Engine(SessionError),
}

impl FailureCause {
    /// Whether this cause warrants another attempt.
    ///
    /// Worker deaths, stalls, and corrupt segments are transient-fault
    /// shaped: the next attempt resumes from the last checkpoint on a
    /// healthy worker.  Parse errors are retried too — the runtime
    /// cannot distinguish a corrupted read from a genuinely malformed
    /// document, and the retry bound keeps the deterministic case
    /// cheap.  Budget breaches ([`SessionError::Limit`]) and checkpoint
    /// misuse are deterministic and fail immediately.
    pub fn retryable(&self) -> bool {
        match self {
            FailureCause::WorkerPanic { .. }
            | FailureCause::WorkerStall { .. }
            | FailureCause::SegmentCorrupted { .. } => true,
            FailureCause::Engine(e) => {
                matches!(e, SessionError::Parse(_) | SessionError::Engine(_))
            }
        }
    }

    /// A short, stable class name (used by the determinism harness to
    /// compare error classes across runs without comparing offsets or
    /// payload text).
    pub fn class(&self) -> &'static str {
        match self {
            FailureCause::WorkerPanic { .. } => "worker-panic",
            FailureCause::WorkerStall { .. } => "worker-stall",
            FailureCause::SegmentCorrupted { .. } => "segment-corrupted",
            FailureCause::Engine(SessionError::Parse(_)) => "engine-parse",
            FailureCause::Engine(SessionError::Limit(_)) => "engine-limit",
            FailureCause::Engine(SessionError::Engine(_)) => "engine-internal",
            FailureCause::Engine(_) => "engine-other",
        }
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::WorkerPanic { detail } => write!(f, "worker panicked: {detail}"),
            FailureCause::WorkerStall { stalled_ms } => {
                write!(f, "worker stalled for {stalled_ms} ms and was abandoned")
            }
            FailureCause::SegmentCorrupted { offset } => {
                write!(f, "segment at byte {offset} failed its integrity check")
            }
            FailureCause::Engine(e) => write!(f, "{e}"),
        }
    }
}

/// Errors of the serving runtime, as seen by submitters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Load shed: the bounded submission queue is full.  Back off and
    /// resubmit, or use [`crate::ServeRuntime::submit_blocking`].
    Overloaded {
        /// Submissions waiting when this one was shed.
        queue_len: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// Admission control refused the request before queueing it (e.g. it
    /// would blow the service-level in-flight byte budget).
    Rejected {
        /// Why admission control said no.
        reason: String,
    },
    /// The runtime is shutting down and accepts no new work.
    ShuttingDown,
    /// Terminal failure: the request was attempted `attempts` times and
    /// the last attempt failed with `last`.  Retryable causes exhaust
    /// the retry budget; terminal causes (budget breaches) report
    /// `attempts: 1`.
    Failed {
        /// Total attempts spent (1 + retries).
        attempts: u32,
        /// The failure that ended the request.
        last: FailureCause,
    },
    /// The job id is unknown to this runtime.
    UnknownJob {
        /// The offending id.
        id: u64,
    },
}

impl ServeError {
    /// A short, stable class name; see [`FailureCause::class`].
    pub fn class(&self) -> String {
        match self {
            ServeError::Overloaded { .. } => "overloaded".to_owned(),
            ServeError::Rejected { .. } => "rejected".to_owned(),
            ServeError::ShuttingDown => "shutting-down".to_owned(),
            ServeError::Failed { last, .. } => format!("failed({})", last.class()),
            ServeError::UnknownJob { .. } => "unknown-job".to_owned(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_len,
                capacity,
            } => write!(
                f,
                "overloaded: submission queue is full ({queue_len}/{capacity})"
            ),
            ServeError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::Failed { attempts, last } => {
                write!(f, "failed after {attempts} attempt(s): {last}")
            }
            ServeError::UnknownJob { id } => write!(f, "unknown job id {id}"),
        }
    }
}

impl std::error::Error for ServeError {}
