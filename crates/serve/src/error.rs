//! Typed errors of the serving runtime.
//!
//! Every way a request can end short of success has a variant here, so
//! callers can tell load shedding from budget rejection from a request
//! that genuinely failed — and for failures, *why* the final attempt
//! failed and how many attempts were spent.

use std::fmt;

use st_core::session::SessionError;

/// Why one attempt at a request failed.  Retryable causes send the
/// request back to the queue (with exponential backoff, resuming from
/// its last checkpoint); terminal causes fail it immediately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The worker thread running the request panicked and died.
    WorkerPanic {
        /// The panic payload, when it carried a message.
        detail: String,
    },
    /// The worker stopped heartbeating past the supervisor's stall
    /// deadline and was abandoned.
    WorkerStall {
        /// How long the worker had been silent when it was abandoned.
        stalled_ms: u64,
    },
    /// A document segment failed its transport integrity check (the
    /// chaos harness injects these; a production transport would detect
    /// them with a checksum).
    SegmentCorrupted {
        /// Byte offset of the corrupt segment.
        offset: usize,
    },
    /// The engine returned a typed error: a parse error, a resource
    /// budget breach, or an engine-internal failure.
    Engine(SessionError),
    /// The request's emission ledger was violated: a resumed attempt
    /// replayed a match that disagrees with what was already delivered,
    /// claimed deliveries the supervisor never saw (forged cursor), or
    /// finished with a stream that does not equal its match list.
    /// Exactly-once delivery cannot be preserved past this point, so the
    /// request fails rather than risk a silent duplicate or gap.
    EmissionLedger {
        /// What disagreed.
        detail: String,
    },
}

impl FailureCause {
    /// Whether this cause warrants another attempt.
    ///
    /// Worker deaths, stalls, and corrupt segments are transient-fault
    /// shaped: the next attempt resumes from the last checkpoint on a
    /// healthy worker.  Parse errors are retried too — the runtime
    /// cannot distinguish a corrupted read from a genuinely malformed
    /// document, and the retry bound keeps the deterministic case
    /// cheap.  Budget breaches ([`SessionError::Limit`]) and checkpoint
    /// misuse are deterministic and fail immediately.
    pub fn retryable(&self) -> bool {
        match self {
            FailureCause::WorkerPanic { .. }
            | FailureCause::WorkerStall { .. }
            | FailureCause::SegmentCorrupted { .. } => true,
            FailureCause::Engine(e) => {
                matches!(e, SessionError::Parse(_) | SessionError::Engine(_))
            }
            // Deterministic state corruption: a retry would re-derive the
            // same divergent stream and could deliver duplicates.
            FailureCause::EmissionLedger { .. } => false,
        }
    }

    /// A short, stable class name (used by the determinism harness to
    /// compare error classes across runs without comparing offsets or
    /// payload text).
    pub fn class(&self) -> &'static str {
        match self {
            FailureCause::WorkerPanic { .. } => "worker-panic",
            FailureCause::WorkerStall { .. } => "worker-stall",
            FailureCause::SegmentCorrupted { .. } => "segment-corrupted",
            FailureCause::Engine(SessionError::Parse(_)) => "engine-parse",
            FailureCause::Engine(SessionError::Limit(_)) => "engine-limit",
            FailureCause::Engine(SessionError::Engine(_)) => "engine-internal",
            FailureCause::Engine(_) => "engine-other",
            FailureCause::EmissionLedger { .. } => "emission-ledger",
        }
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::WorkerPanic { detail } => write!(f, "worker panicked: {detail}"),
            FailureCause::WorkerStall { stalled_ms } => {
                write!(f, "worker stalled for {stalled_ms} ms and was abandoned")
            }
            FailureCause::SegmentCorrupted { offset } => {
                write!(f, "segment at byte {offset} failed its integrity check")
            }
            FailureCause::Engine(e) => write!(f, "{e}"),
            FailureCause::EmissionLedger { detail } => {
                write!(f, "emission ledger violated: {detail}")
            }
        }
    }
}

/// Errors of the serving runtime, as seen by submitters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Load shed: the bounded submission queue is full.  Back off and
    /// resubmit, or use [`crate::ServeRuntime::submit_blocking`].
    Overloaded {
        /// Submissions waiting when this one was shed.
        queue_len: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// Admission control refused the request before queueing it (e.g. it
    /// would blow the service-level in-flight byte budget).
    Rejected {
        /// Why admission control said no.
        reason: String,
    },
    /// The runtime is shutting down and accepts no new work.
    ShuttingDown,
    /// Terminal failure: the request was attempted `attempts` times and
    /// the last attempt failed with `last`.  Retryable causes exhaust
    /// the retry budget; terminal causes (budget breaches) report
    /// `attempts: 1`.
    Failed {
        /// Total attempts spent (1 + retries).
        attempts: u32,
        /// The failure that ended the request.
        last: FailureCause,
    },
    /// The job id is unknown to this runtime.
    UnknownJob {
        /// The offending id.
        id: u64,
    },
    /// The request's deadline passed while it was still queued; the pool
    /// dropped it instead of burning a worker on an answer nobody is
    /// waiting for.
    DeadlineExpired {
        /// How long the request had been queued when it was dropped
        /// (runtime-clock milliseconds).
        waited_ms: u64,
    },
}

impl ServeError {
    /// A short, stable class name; see [`FailureCause::class`].
    pub fn class(&self) -> String {
        match self {
            ServeError::Overloaded { .. } => "overloaded".to_owned(),
            ServeError::Rejected { .. } => "rejected".to_owned(),
            ServeError::ShuttingDown => "shutting-down".to_owned(),
            ServeError::Failed { last, .. } => format!("failed({})", last.class()),
            ServeError::UnknownJob { .. } => "unknown-job".to_owned(),
            ServeError::DeadlineExpired { .. } => "deadline-expired".to_owned(),
        }
    }

    /// The stable numeric code this error travels under on the wire (the
    /// `ERROR` frame of the network front-end; see `crate::frame`).
    ///
    /// The match is deliberately exhaustive — adding a [`ServeError`]
    /// variant without assigning it a wire code is a compile error, so a
    /// wire client can never see a stringly-typed failure.  Codes are
    /// append-only: never renumber a released value.
    pub fn wire_code(&self) -> u16 {
        match self {
            ServeError::Overloaded { .. } => codes::OVERLOADED,
            ServeError::Rejected { .. } => codes::REJECTED,
            ServeError::ShuttingDown => codes::SHUTTING_DOWN,
            ServeError::Failed { .. } => codes::FAILED,
            ServeError::UnknownJob { .. } => codes::UNKNOWN_JOB,
            ServeError::DeadlineExpired { .. } => codes::DEADLINE_EXPIRED,
        }
    }
}

/// The stable numeric protocol error codes.  Service-level outcomes
/// (mapped from [`ServeError`]) live below 100; transport/framing
/// failures (mapped from `crate::frame::FrameError` and the connection
/// state machine) live at 100 and above.  Append-only.
pub mod codes {
    /// Load shed: the service is at capacity; back off and resubmit.
    pub const OVERLOADED: u16 = 1;
    /// Admission control refused the request outright.
    pub const REJECTED: u16 = 2;
    /// The service is draining and accepts no new work.
    pub const SHUTTING_DOWN: u16 = 3;
    /// The request was attempted and failed with a typed terminal cause.
    pub const FAILED: u16 = 4;
    /// The job id is unknown.
    pub const UNKNOWN_JOB: u16 = 5;
    /// The request's deadline passed while it was queued.
    pub const DEADLINE_EXPIRED: u16 = 6;

    /// The connection did not open with the protocol magic.
    pub const BAD_PREAMBLE: u16 = 100;
    /// An unknown frame type byte.
    pub const BAD_FRAME_TYPE: u16 = 101;
    /// A frame length over the negotiated maximum.
    pub const FRAME_TOO_LARGE: u16 = 102;
    /// The stream ended (or the peer lied about a length) mid-frame.
    pub const TRUNCATED_FRAME: u16 = 103;
    /// A read deadline expired.
    pub const READ_TIMEOUT: u16 = 104;
    /// A write deadline expired (the client is not draining replies).
    pub const WRITE_TIMEOUT: u16 = 105;
    /// The client's sustained throughput fell below the configured floor.
    pub const SLOW_CLIENT: u16 = 106;
    /// The query payload was malformed or failed to compile.
    pub const BAD_QUERY: u16 = 107;
    /// A frame arrived that the protocol state machine does not allow
    /// here (e.g. document bytes before any query).
    pub const PROTOCOL: u16 = 108;
    /// The engine rejected the document (parse error or limit breach).
    pub const ENGINE: u16 = 109;
    /// A frame whose payload structure is malformed (bad lengths or
    /// counts inside the payload).
    pub const BAD_PAYLOAD: u16 = 110;

    /// The symbolic name of a wire code, for diagnostics.  Codes this
    /// build does not know (a newer peer) come back as `"UNKNOWN"`.
    #[must_use]
    pub fn name(code: u16) -> &'static str {
        match code {
            OVERLOADED => "OVERLOADED",
            REJECTED => "REJECTED",
            SHUTTING_DOWN => "SHUTTING_DOWN",
            FAILED => "FAILED",
            UNKNOWN_JOB => "UNKNOWN_JOB",
            DEADLINE_EXPIRED => "DEADLINE_EXPIRED",
            BAD_PREAMBLE => "BAD_PREAMBLE",
            BAD_FRAME_TYPE => "BAD_FRAME_TYPE",
            FRAME_TOO_LARGE => "FRAME_TOO_LARGE",
            TRUNCATED_FRAME => "TRUNCATED_FRAME",
            READ_TIMEOUT => "READ_TIMEOUT",
            WRITE_TIMEOUT => "WRITE_TIMEOUT",
            SLOW_CLIENT => "SLOW_CLIENT",
            BAD_QUERY => "BAD_QUERY",
            PROTOCOL => "PROTOCOL",
            ENGINE => "ENGINE",
            BAD_PAYLOAD => "BAD_PAYLOAD",
            _ => "UNKNOWN",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_len,
                capacity,
            } => write!(
                f,
                "overloaded: submission queue is full ({queue_len}/{capacity})"
            ),
            ServeError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::Failed { attempts, last } => {
                write!(f, "failed after {attempts} attempt(s): {last}")
            }
            ServeError::UnknownJob { id } => write!(f, "unknown job id {id}"),
            ServeError::DeadlineExpired { waited_ms } => {
                write!(f, "deadline expired after {waited_ms} ms in queue")
            }
        }
    }
}

impl std::error::Error for ServeError {}
