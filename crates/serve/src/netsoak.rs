//! The deterministic *network* chaos-soak harness (feature `chaos`).
//!
//! One soak run: bind a [`NetServer`] on a loopback port, generate a
//! seeded stream of conformance cases, compute each case's *clean*
//! reference (an uninterrupted [`FusedQuery::select_bytes`] run, plus
//! the DOM oracle on well-formed documents), then play each request
//! over the wire as a hostile client — seeded mid-stream disconnects,
//! torn frames, read-deadline stalls, and duplicate uploads
//! ([`crate::netchaos`]) — and hold the front-end to its contract:
//!
//! * every request that is **accepted and completed** returns a match
//!   set bitwise-equal to the clean run's (and the DOM oracle's, when
//!   the document is well-formed), no matter how many faulted attempts
//!   preceded it, and a duplicate upload of it returns the identical
//!   reply;
//! * every request the server **refuses or kills** dies with a *typed*
//!   wire code from the stable registry ([`crate::error::codes`]) —
//!   never a hang, never a panic, never a garbage frame;
//! * the server outlives all of it: after the chaos the harness runs
//!   one clean request and requires a correct answer.
//!
//! Fault rolls are pure in `(seed, request, attempt, segment)`, and
//! requests are driven sequentially, so [`NetSoakReport::outcomes`] is
//! identical whatever [`NetSoakConfig::connections`] capacity the
//! server runs with — the determinism suite runs the same seed against
//! different capacities and asserts exactly that.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use st_automata::{compile_regex, Alphabet, Dfa, Tag};
use st_baseline::dom;
use st_conform::gen::{case_rng, gen_case, GenConfig};
use st_core::engine::FusedQuery;
use st_core::plancache::PlanCacheStats;
use st_core::planner::CompiledQuery;
use st_obs::ObsHandle;
use st_trees::{encode::markup_decode, xml::Scanner};

use st_core::emit::{EmissionCursor, StreamedMatch};

use crate::config::ServiceBudget;
use crate::error::codes;
use crate::frame::{
    decode_error, decode_match_part, decode_matches_with_cursor, read_frame, FrameKind,
    RESPONSE_MAX_FRAME_LEN,
};
use crate::net::{NetClient, NetConfig, NetResponse, NetServer, NetStats};
use crate::netchaos::{NetChaosConfig, NetFault};

/// Parameters of one network soak run.  Everything that influences
/// behaviour is here, so `(NetSoakConfig, seed)` fully reproduces a
/// run.
#[derive(Clone, Debug)]
pub struct NetSoakConfig {
    /// Master seed: drives case generation and fault injection.
    pub seed: u64,
    /// Requests to generate and play.
    pub requests: u64,
    /// Server connection capacity (the "pool size" of the front-end).
    /// Outcomes must not depend on it.
    pub connections: usize,
    /// Client chunk size: documents are streamed in frames of this many
    /// bytes, and fault rolls land at these boundaries.
    pub segment_bytes: usize,
    /// Attempts per request (first try + reconnects after faults).
    pub max_attempts: u32,
    /// Server read deadline in milliseconds.  Keep it comfortably below
    /// the injected stall ([`NetChaosConfig::stall_ms`]) so the server
    /// always wins the race and stall outcomes stay deterministic.
    pub read_timeout_ms: u64,
    /// Server in-flight byte budget.  The harness appends one synthetic
    /// request larger than it, which must die with a typed `REJECTED`.
    pub in_flight_budget: usize,
    /// Checkpoint cadence of in-flight sessions, in bytes.
    pub checkpoint_every: usize,
    /// The seeded fault profile.
    pub chaos: NetChaosConfig,
    /// Observability sink the server records into.  Excluded from
    /// equality: it observes the run, it does not shape it.
    pub obs: ObsHandle,
}

/// Two soak profiles are equal when they would *behave* identically:
/// every field except the observability handle.
impl PartialEq for NetSoakConfig {
    fn eq(&self, other: &NetSoakConfig) -> bool {
        self.seed == other.seed
            && self.requests == other.requests
            && self.connections == other.connections
            && self.segment_bytes == other.segment_bytes
            && self.max_attempts == other.max_attempts
            && self.read_timeout_ms == other.read_timeout_ms
            && self.in_flight_budget == other.in_flight_budget
            && self.checkpoint_every == other.checkpoint_every
            && self.chaos == other.chaos
    }
}

impl Eq for NetSoakConfig {}

impl NetSoakConfig {
    /// A moderate network-soak profile for the given seed.
    pub fn new(seed: u64) -> NetSoakConfig {
        NetSoakConfig {
            seed,
            requests: 40,
            connections: 2,
            segment_bytes: 48,
            max_attempts: 4,
            read_timeout_ms: 60,
            in_flight_budget: 64 << 10,
            checkpoint_every: 64,
            chaos: NetChaosConfig::with_seed(seed),
            obs: ObsHandle::disabled(),
        }
    }

    /// Sets the request count.
    pub fn with_requests(mut self, requests: u64) -> NetSoakConfig {
        self.requests = requests;
        self
    }

    /// Sets the server connection capacity.
    pub fn with_connections(mut self, connections: usize) -> NetSoakConfig {
        self.connections = connections.max(1);
        self
    }

    /// Sets the seeded fault profile.
    pub fn with_chaos(mut self, chaos: NetChaosConfig) -> NetSoakConfig {
        self.chaos = chaos;
        self
    }

    /// Attaches an observability handle to the server.
    pub fn with_obs(mut self, obs: ObsHandle) -> NetSoakConfig {
        self.obs = obs;
        self
    }

    /// The server configuration this soak profile induces.
    pub fn net_config(&self) -> NetConfig {
        NetConfig::default()
            .with_max_connections(self.connections)
            .with_timeouts(
                Duration::from_millis(self.read_timeout_ms),
                Duration::from_secs(2),
            )
            .with_checkpoint_every(self.checkpoint_every)
            .with_budget(ServiceBudget::default().with_max_in_flight_bytes(self.in_flight_budget))
            .with_obs(self.obs.clone())
    }
}

/// How one request ended, in a form comparable across runs and server
/// capacities: match sets verbatim, failures by stable wire code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetRequestOutcome {
    /// Completed with these matches (document-order node ids).
    Matches(Vec<usize>),
    /// Refused or killed with this typed wire code.
    Failed(u16),
    /// Every attempt was eaten by injected chaos; the request was
    /// abandoned (counted, not a contract violation).
    GaveUp,
}

/// A violation of the front-end contract, with everything needed to
/// reproduce it.
#[derive(Clone, Debug)]
pub struct NetSoakDivergence {
    /// Index of the request in the generation stream (`case_rng(seed,
    /// request)` regenerates its case).
    pub request: u64,
    /// The case's query pattern.
    pub pattern: String,
    /// The case's alphabet characters.
    pub alphabet: String,
    /// The case's document bytes.
    pub doc: Vec<u8>,
    /// What disagreed with what.
    pub detail: String,
}

impl NetSoakDivergence {
    /// A self-contained text reproducer (hex document, regeneration
    /// coordinates) suitable for a CI artifact.
    pub fn reproducer(&self, seed: u64) -> String {
        let hex: String = self.doc.iter().map(|b| format!("{b:02x}")).collect();
        format!(
            "seed = {}\nrequest = {}\npattern = {}\nalphabet = {}\ndoc_hex = {}\ndetail = {}\n",
            seed, self.request, self.pattern, self.alphabet, hex, self.detail
        )
    }
}

/// The result of one network soak run.
#[derive(Clone, Debug)]
pub struct NetSoakReport {
    /// Per-request outcomes, in submission order.  The cross-capacity
    /// determinism invariant is over exactly this vector.
    pub outcomes: Vec<NetRequestOutcome>,
    /// Requests that completed and matched the clean reference.
    pub completed: usize,
    /// Requests that died with an expected typed code (the clean run
    /// rejects their document/pattern too, or the budget refused them).
    pub typed_failures: usize,
    /// Reconnect attempts consumed by injected faults.
    pub chaos_retries: u64,
    /// Requests abandoned after every attempt faulted.
    pub gave_up: usize,
    /// Duplicate uploads replayed (each verified bitwise against the
    /// original reply).
    pub resends: usize,
    /// Contract violations.  Empty on a healthy front-end.
    pub divergences: Vec<NetSoakDivergence>,
    /// Final server counters.
    pub stats: NetStats,
    /// Final plan-cache counters (duplicate patterns and resends hit).
    pub cache: PlanCacheStats,
}

impl NetSoakReport {
    /// Whether the run upheld the contract.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Reproducers for every divergence, concatenated (empty when
    /// [`NetSoakReport::ok`]).
    pub fn reproducer(&self, seed: u64) -> String {
        self.divergences
            .iter()
            .map(|d| d.reproducer(seed))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// One generated request with its precomputed references.
struct Prepared {
    pattern: String,
    alphabet: String,
    csv: String,
    doc: Vec<u8>,
    /// The uninterrupted clean run: matches, or the engine's rejection.
    clean: Result<Vec<usize>, String>,
    /// DOM-oracle matches, when the document is well-formed.
    oracle: Option<Vec<usize>>,
}

fn dom_oracle(doc: &[u8], g: &Alphabet, dfa: &Dfa) -> Option<Vec<usize>> {
    let tags: Vec<Tag> = Scanner::new(doc, g).collect::<Result<_, _>>().ok()?;
    markup_decode(&tags).ok()?;
    dom::evaluate(dfa, &tags).ok().map(|r| r.selected)
}

fn prepare(seed: u64, request: u64, gen_cfg: &GenConfig) -> Prepared {
    let (case, _) = gen_case(&mut case_rng(seed, request), gen_cfg);
    let g = Alphabet::of_chars(&case.alphabet);
    let csv = case
        .alphabet
        .chars()
        .map(String::from)
        .collect::<Vec<_>>()
        .join(",");
    let compiled = compile_regex(&case.pattern, &g).ok().and_then(|dfa| {
        let plan = CompiledQuery::compile(&dfa);
        plan.fused(&g).ok().map(|f| (f, dfa))
    });
    let (clean, oracle) = match compiled {
        Some((f, dfa)) => {
            let f: Arc<FusedQuery> = Arc::new(f);
            let clean = f.select_bytes(&case.doc).map_err(|e| format!("{e:?}"));
            let oracle = dom_oracle(&case.doc, &g, &dfa);
            (clean, oracle)
        }
        None => (Err("no byte-level engine".to_owned()), None),
    };
    Prepared {
        pattern: case.pattern,
        alphabet: case.alphabet,
        csv,
        doc: case.doc,
        clean,
        oracle,
    }
}

/// Sends the header and a strict prefix of one `CHUNK` frame — a torn
/// frame the server must answer with a typed `TRUNCATED_FRAME`.
fn send_torn_chunk(client: &mut NetClient, seg: &[u8]) {
    let mut raw = Vec::with_capacity(5 + seg.len() / 2);
    raw.push(FrameKind::Chunk.as_byte());
    raw.extend_from_slice(&(seg.len() as u32).to_le_bytes());
    raw.extend_from_slice(&seg[..seg.len() / 2]);
    let _ = client.stream_mut().write_all(&raw);
    let _ = client.stream_mut().flush();
}

/// Waits until no connection is open on the server.
///
/// Capacity independence needs this: after a faulted attempt the
/// client's socket is gone, but the server-side handler may linger until
/// its read deadline notices.  Reconnecting while that zombie still
/// counts against `max_connections` would get refused on a capacity-1
/// server but accepted on a larger one — the outcome would depend on
/// capacity, which is exactly what the soak exists to rule out.  The
/// harness is the server's only client and drives requests sequentially,
/// so quiescence is always reached within a read deadline.
fn wait_quiesce(server: &NetServer) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().open > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
}

enum AttemptEnd {
    Completed(Vec<usize>),
    TypedFailure(u16, String),
    /// The attempt was cut by an injected fault (or its aftermath);
    /// reconnect and retry.
    Faulted,
}

/// Reads the one lock-step reply a streamed chunk owes: a `MatchPart`
/// (appended to `parts` after its start position is verified) or an
/// `Error` frame.  `Ok(None)` means the part was consumed and the upload
/// continues; `Ok(Some(end))` ends the attempt; `Err(())` is a
/// transport-level fault (reconnect and retry).
fn read_stream_part(
    client: &mut NetClient,
    parts: &mut Vec<StreamedMatch>,
) -> Result<Option<AttemptEnd>, ()> {
    match read_frame(client.stream_mut(), RESPONSE_MAX_FRAME_LEN) {
        Ok(f) if f.kind == FrameKind::MatchPart => match decode_match_part(&f.payload) {
            Ok((start, batch)) if start == parts.len() as u64 => {
                parts.extend_from_slice(&batch);
                Ok(None)
            }
            Ok((start, _)) => Ok(Some(AttemptEnd::TypedFailure(
                0,
                format!(
                    "MATCH_PART starts at {start}, {} part(s) received so far",
                    parts.len()
                ),
            ))),
            Err(e) => Ok(Some(AttemptEnd::TypedFailure(
                0,
                format!("malformed MATCH_PART: {e}"),
            ))),
        },
        Ok(f) if f.kind == FrameKind::Error => match decode_error(&f.payload) {
            Ok((code, message)) => {
                if matches!(
                    code,
                    codes::READ_TIMEOUT | codes::WRITE_TIMEOUT | codes::OVERLOADED
                ) {
                    Err(())
                } else {
                    Ok(Some(AttemptEnd::TypedFailure(code, message)))
                }
            }
            Err(_) => Err(()),
        },
        _ => Err(()),
    }
}

fn play_attempt(
    server: &NetServer,
    addr: &str,
    p: &Prepared,
    cfg: &NetSoakConfig,
    request: u64,
    attempt: u32,
) -> AttemptEnd {
    let before = server.stats().connections;
    let Ok(mut client) =
        NetClient::connect_with_timeouts(addr, Duration::from_secs(2), Duration::from_secs(2))
    else {
        return AttemptEnd::Faulted;
    };
    // Wait for the accept loop to actually take this connection.  A
    // faulted attempt can write and hang up entirely inside the accept
    // loop's polling interval, leaving its socket in the kernel backlog
    // where [`wait_quiesce`] cannot see it; the zombie would then be
    // accepted *during* the next attempt and spuriously trip the
    // connection cap on small-capacity servers.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().connections <= before && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    // Half the requests exercise the lock-step streaming protocol, so
    // faults land between MATCH_PART exchanges too.  The choice is a
    // pure function of the request index: every retry of a request (and
    // every pool capacity) replays the same protocol.
    let stream = request.is_multiple_of(2);
    let sent = if stream {
        client.send_stream_query(&p.pattern, &p.csv)
    } else {
        client.send_query(&p.pattern, &p.csv)
    };
    if sent.is_err() {
        return AttemptEnd::Faulted;
    }
    let mut parts: Vec<StreamedMatch> = Vec::new();
    let segs: Vec<&[u8]> = p.doc.chunks(cfg.segment_bytes.max(1)).collect();
    // One roll per segment boundary, plus one before FINISH, so faults
    // can land anywhere in the upload including its very end.
    for (s, seg) in segs.iter().enumerate() {
        match cfg.chaos.roll(request, attempt, s as u64) {
            NetFault::None => {
                if client.send_chunk(seg).is_err() {
                    return AttemptEnd::Faulted;
                }
                if stream {
                    match read_stream_part(&mut client, &mut parts) {
                        Ok(None) => {}
                        Ok(Some(end)) => return end,
                        Err(()) => return AttemptEnd::Faulted,
                    }
                }
            }
            NetFault::Disconnect => return AttemptEnd::Faulted,
            NetFault::Torn => {
                send_torn_chunk(&mut client, seg);
                return AttemptEnd::Faulted;
            }
            NetFault::Stall => {
                std::thread::sleep(Duration::from_millis(cfg.chaos.stall_ms));
                return AttemptEnd::Faulted;
            }
        }
    }
    match cfg.chaos.roll(request, attempt, segs.len() as u64) {
        NetFault::None => {}
        NetFault::Disconnect => return AttemptEnd::Faulted,
        NetFault::Torn => {
            send_torn_chunk(&mut client, b"x");
            return AttemptEnd::Faulted;
        }
        NetFault::Stall => {
            std::thread::sleep(Duration::from_millis(cfg.chaos.stall_ms));
            return AttemptEnd::Faulted;
        }
    }
    if client.send_finish().is_err() {
        return AttemptEnd::Faulted;
    }
    if stream {
        // The final MATCHES reply carries the emission cursor.  The
        // parts collected in lock-step must tile the final list exactly
        // and hash to the server's digest — a disagreement here is a
        // retraction or a duplicate, never something to retry away.
        return match read_frame(client.stream_mut(), RESPONSE_MAX_FRAME_LEN) {
            Ok(f) if f.kind == FrameKind::Matches => match decode_matches_with_cursor(&f.payload) {
                Ok((ids, cursor)) => {
                    if EmissionCursor::over(&parts) != cursor {
                        AttemptEnd::TypedFailure(
                            0,
                            format!(
                                "stream cursor mismatch: {} part(s) do not hash to the \
                                     server's final cursor",
                                parts.len()
                            ),
                        )
                    } else if parts.iter().map(|m| m.node).ne(ids.iter().copied()) {
                        AttemptEnd::TypedFailure(
                            0,
                            format!(
                                "streamed parts {:?} != final matches {ids:?}",
                                parts.iter().map(|m| m.node).collect::<Vec<_>>()
                            ),
                        )
                    } else {
                        AttemptEnd::Completed(ids)
                    }
                }
                Err(e) => AttemptEnd::TypedFailure(0, format!("bad final stream reply: {e}")),
            },
            Ok(f) if f.kind == FrameKind::Error => match decode_error(&f.payload) {
                Ok((code, message)) => {
                    if matches!(
                        code,
                        codes::READ_TIMEOUT | codes::WRITE_TIMEOUT | codes::OVERLOADED
                    ) {
                        AttemptEnd::Faulted
                    } else {
                        AttemptEnd::TypedFailure(code, message)
                    }
                }
                Err(_) => AttemptEnd::Faulted,
            },
            _ => AttemptEnd::Faulted,
        };
    }
    match client.read_response() {
        Ok(NetResponse::Matches(ids)) => AttemptEnd::Completed(ids),
        Ok(NetResponse::MultiMatches(_) | NetResponse::StreamMatches { .. }) => {
            AttemptEnd::TypedFailure(
                0,
                "server answered a plain query with the wrong reply shape".into(),
            )
        }
        Ok(NetResponse::ServerError { code, message }) => {
            // Transient service-side conditions are retried; everything
            // else is the request's typed end.
            if matches!(
                code,
                codes::READ_TIMEOUT | codes::WRITE_TIMEOUT | codes::OVERLOADED
            ) {
                AttemptEnd::Faulted
            } else {
                AttemptEnd::TypedFailure(code, message)
            }
        }
        Err(_) => AttemptEnd::Faulted,
    }
}

/// Runs one network chaos soak and checks the front-end contract.  See
/// the module docs for the invariants.
pub fn run_net_soak(cfg: &NetSoakConfig) -> NetSoakReport {
    let gen_cfg = GenConfig::default();
    let prepared: Vec<Prepared> = (0..cfg.requests)
        .map(|i| prepare(cfg.seed, i, &gen_cfg))
        .collect();

    let server = NetServer::bind("127.0.0.1:0", cfg.net_config()).expect("bind loopback");
    let addr = server.local_addr().to_string();

    let mut outcomes = Vec::with_capacity(prepared.len() + 1);
    let mut divergences: Vec<NetSoakDivergence> = Vec::new();
    let mut completed = 0usize;
    let mut typed_failures = 0usize;
    let mut chaos_retries = 0u64;
    let mut gave_up = 0usize;
    let mut resends = 0usize;

    for (i, p) in prepared.iter().enumerate() {
        let diverge = |detail: String| NetSoakDivergence {
            request: i as u64,
            pattern: p.pattern.clone(),
            alphabet: p.alphabet.clone(),
            doc: p.doc.clone(),
            detail,
        };
        let mut outcome = NetRequestOutcome::GaveUp;
        for attempt in 1..=cfg.max_attempts {
            wait_quiesce(&server);
            match play_attempt(&server, &addr, p, cfg, i as u64, attempt) {
                AttemptEnd::Completed(ids) => {
                    match &p.clean {
                        Ok(cm) if &ids == cm => {
                            completed += 1;
                            if let Some(oracle) = &p.oracle {
                                if oracle != &ids {
                                    divergences.push(diverge(format!(
                                        "served matches {ids:?} disagree with DOM oracle {oracle:?}"
                                    )));
                                }
                            }
                        }
                        Ok(cm) => divergences.push(diverge(format!(
                            "served matches {ids:?} != clean run {cm:?} (attempt {attempt})"
                        ))),
                        Err(e) => divergences.push(diverge(format!(
                            "request completed with {ids:?} where the clean run rejects: {e}"
                        ))),
                    }
                    // Duplicate upload: replay the whole request on a
                    // fresh connection; the reply must be identical.
                    if cfg.chaos.roll_resend(i as u64) {
                        resends += 1;
                        wait_quiesce(&server);
                        match NetClient::connect(&addr)
                            .map_err(|e| e.to_string())
                            .and_then(|mut c| {
                                c.query(&p.pattern, &p.csv, &p.doc, cfg.segment_bytes)
                                    .map_err(|e| e.to_string())
                            }) {
                            Ok(NetResponse::Matches(ids2)) if ids2 == ids => {}
                            other => divergences.push(diverge(format!(
                                "duplicate upload diverged: first {ids:?}, then {other:?}"
                            ))),
                        }
                    }
                    outcome = NetRequestOutcome::Matches(ids);
                    break;
                }
                AttemptEnd::TypedFailure(code, message) => {
                    // A typed failure must be *expected*: the clean run
                    // rejects this case too (engine error or a pattern
                    // that does not compile/fuse).
                    if p.clean.is_err() && matches!(code, codes::ENGINE | codes::BAD_QUERY) {
                        typed_failures += 1;
                    } else {
                        divergences.push(diverge(format!(
                            "unexpected typed failure {code}: {message} \
                             (clean run: {:?})",
                            p.clean
                        )));
                    }
                    outcome = NetRequestOutcome::Failed(code);
                    break;
                }
                AttemptEnd::Faulted => {
                    chaos_retries += 1;
                }
            }
        }
        if outcome == NetRequestOutcome::GaveUp {
            gave_up += 1;
        }
        outcomes.push(outcome);
    }

    // The synthetic oversized request: one chunk larger than the whole
    // in-flight budget must die with a typed REJECTED, not a hang.
    {
        wait_quiesce(&server);
        let big = vec![b'x'; cfg.in_flight_budget + 1];
        // No FINISH after the chunk: the server rejects on the chunk
        // itself, and the reply must be readable on a quiet connection.
        let end = NetClient::connect(&addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| {
                c.send_query(".*a", "a,b").map_err(|e| e.to_string())?;
                c.send_chunk(&big).map_err(|e| e.to_string())?;
                c.read_response().map_err(|e| e.to_string())
            });
        match end {
            Ok(NetResponse::ServerError { code, .. }) if code == codes::REJECTED => {
                typed_failures += 1;
                outcomes.push(NetRequestOutcome::Failed(code));
            }
            other => {
                divergences.push(NetSoakDivergence {
                    request: cfg.requests,
                    pattern: ".*a".to_owned(),
                    alphabet: "ab".to_owned(),
                    doc: Vec::new(),
                    detail: format!("oversized request did not REJECT: {other:?}"),
                });
                outcomes.push(NetRequestOutcome::GaveUp);
            }
        }
    }

    // The server must outlive the chaos: one clean request afterwards.
    {
        wait_quiesce(&server);
        let end = NetClient::connect(&addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| {
                c.query(".*a", "a,b", b"<a><b></b></a>", 4)
                    .map_err(|e| e.to_string())
            });
        if end != Ok(NetResponse::Matches(vec![0])) {
            divergences.push(NetSoakDivergence {
                request: cfg.requests + 1,
                pattern: ".*a".to_owned(),
                alphabet: "ab".to_owned(),
                doc: b"<a><b></b></a>".to_vec(),
                detail: format!("post-chaos clean request failed: {end:?}"),
            });
        }
    }

    let stats = server.stats();
    let cache = server.plan_cache().stats();
    server.shutdown();
    NetSoakReport {
        outcomes,
        completed,
        typed_failures,
        chaos_retries,
        gave_up,
        resends,
        divergences,
        stats,
        cache,
    }
}
