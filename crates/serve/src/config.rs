//! Runtime configuration: pool shape, checkpoint cadence, retry policy,
//! backpressure thresholds, and the service-level budget that per-session
//! [`Limits`] inherit from.

use std::time::Duration;

use st_core::session::Limits;
use st_obs::ObsHandle;

use crate::chaos::ChaosConfig;

/// The service-level resource budget.  Admission control enforces the
/// aggregate part (in-flight bytes); every admitted session inherits the
/// per-session part ([`ServiceBudget::session_limits`]) unless its
/// [`crate::JobSpec`] overrides it.
#[derive(Clone, Debug, Default)]
pub struct ServiceBudget {
    /// Total document bytes the runtime will hold in flight (queued +
    /// running).  Submissions that would cross it are rejected with
    /// [`crate::ServeError::Rejected`].  `None` = unbounded.
    pub max_in_flight_bytes: Option<usize>,
    /// Resource guards applied to every session (depth, bytes,
    /// imbalance, wall clock, diagnostics cap) — see
    /// [`st_core::session::Limits`].
    pub session_limits: Limits,
}

impl ServiceBudget {
    /// Sets the aggregate in-flight byte budget.
    pub fn with_max_in_flight_bytes(mut self, bytes: usize) -> ServiceBudget {
        self.max_in_flight_bytes = Some(bytes);
        self
    }

    /// Sets the per-session limits every admitted session inherits.
    pub fn with_session_limits(mut self, limits: Limits) -> ServiceBudget {
        self.session_limits = limits;
        self
    }

    /// Derives the [`Limits`] one session actually runs under.  This is
    /// the *single* place the runtime turns a request into per-session
    /// guards: the request's own limits if it brought any, else the
    /// budget's `session_limits`; either way the budget's injected clock
    /// is inherited when the request did not bring its own (so stall and
    /// wall-clock behaviour stay testable), and the runtime's
    /// observability handle is attached.
    pub fn session_limits_for(&self, requested: Option<&Limits>, obs: &ObsHandle) -> Limits {
        let mut limits = match requested {
            Some(own) => {
                let mut own = own.clone();
                if own.clock.is_none() {
                    own.clock = self.session_limits.clock;
                }
                own
            }
            None => self.session_limits.clone(),
        };
        limits.obs = obs.clone();
        limits
    }
}

/// Configuration of a [`crate::ServeRuntime`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded submission queue capacity; submissions beyond it are shed
    /// with [`crate::ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Checkpoint cadence: a session checkpoint is minted after every
    /// this-many document bytes fed.  Smaller = cheaper failover replay,
    /// more snapshot traffic; larger = the reverse.
    pub checkpoint_every: usize,
    /// Retries after the first attempt of a request (so a request gets
    /// at most `max_retries + 1` attempts) before the typed terminal
    /// [`crate::ServeError::Failed`].
    pub max_retries: u32,
    /// Base of the exponential retry backoff: attempt `n` waits
    /// `backoff_base * 2^(n-1)` before redispatch.
    pub backoff_base: Duration,
    /// A busy worker that has not heartbeated for this long is declared
    /// stalled: it is abandoned (its late writes are ignored), a
    /// replacement worker is spawned, and its request resumes elsewhere
    /// from the last checkpoint.  Heartbeats tick once per checkpoint
    /// cadence, so keep this comfortably above the time one cadence of
    /// bytes takes to process.
    pub stall_timeout: Duration,
    /// Queue occupancy (in percent of `queue_capacity`) at and above
    /// which the runtime degrades from the data-parallel chunked path to
    /// the sequential guarded session path.
    pub degrade_at_percent: usize,
    /// Minimum document size for the data-parallel chunked fast path;
    /// smaller documents always run the session path.
    pub parallel_threshold: usize,
    /// Threads given to one chunked evaluation.
    pub chunk_threads: usize,
    /// State budget for the shared product DFA of grouped multi-query
    /// requests (see [`st_core::queryset::QuerySet::compile_with_budget`]):
    /// past it the set compiler falls back to lane-wise simulation, and
    /// `0` disables the product tier outright.  A
    /// [`crate::MultiJobSpec`] can override it per request.
    pub product_budget: usize,
    /// Assumed shared-pass throughput, in bytes per runtime-clock
    /// millisecond, used to project a grouped multi-query pass's finish
    /// time for deadline-aware grouping *before* any pass has completed.
    /// Once passes complete, a measured moving average replaces it.  A
    /// member whose deadline is projected to expire before the shared
    /// pass finishes is not adopted into the group (it runs its own pass
    /// or expires at dispatch as before).
    pub group_rate_hint: u64,
    /// Service-level budget (admission control + inherited limits).
    pub budget: ServiceBudget,
    /// Deterministic fault injection; `None` in production.  When set,
    /// every request runs the checkpointed session path so that every
    /// injected fault exercises checkpoint failover.
    pub chaos: Option<ChaosConfig>,
    /// Observability sink.  The disabled default costs one branch per
    /// recorded event; an enabled handle gives the runtime queue/budget
    /// gauges, per-request attempt and latency histograms, counters
    /// mirroring [`crate::ServeStats`], and a structured trace ring of
    /// supervisor decisions.
    pub obs: ObsHandle,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            checkpoint_every: 64 << 10,
            max_retries: 3,
            backoff_base: Duration::from_millis(2),
            stall_timeout: Duration::from_secs(10),
            degrade_at_percent: 50,
            parallel_threshold: 64 << 10,
            chunk_threads: 4,
            product_budget: st_core::queryset::DEFAULT_PRODUCT_BUDGET,
            group_rate_hint: 100_000,
            budget: ServiceBudget::default(),
            chaos: None,
            obs: ObsHandle::disabled(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }

    /// Sets the submission queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the checkpoint cadence in bytes.
    pub fn with_checkpoint_every(mut self, bytes: usize) -> ServeConfig {
        self.checkpoint_every = bytes.max(1);
        self
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> ServeConfig {
        self.max_retries = retries;
        self
    }

    /// Sets the stall deadline.
    pub fn with_stall_timeout(mut self, timeout: Duration) -> ServeConfig {
        self.stall_timeout = timeout;
        self
    }

    /// Sets the exponential backoff base.
    pub fn with_backoff_base(mut self, base: Duration) -> ServeConfig {
        self.backoff_base = base;
        self
    }

    /// Sets the queue-occupancy degradation threshold (percent).
    pub fn with_degrade_at_percent(mut self, percent: usize) -> ServeConfig {
        self.degrade_at_percent = percent;
        self
    }

    /// Sets the minimum document size for the chunked fast path.
    pub fn with_parallel_threshold(mut self, bytes: usize) -> ServeConfig {
        self.parallel_threshold = bytes;
        self
    }

    /// Sets the thread count of one chunked evaluation.
    pub fn with_chunk_threads(mut self, threads: usize) -> ServeConfig {
        self.chunk_threads = threads.max(1);
        self
    }

    /// Sets the shared product-DFA state budget for grouped multi-query
    /// requests (`0` forces lane-wise simulation).
    pub fn with_product_budget(mut self, budget: usize) -> ServeConfig {
        self.product_budget = budget;
        self
    }

    /// Sets the assumed shared-pass throughput (bytes per millisecond)
    /// for deadline-aware grouping projections.
    pub fn with_group_rate_hint(mut self, bytes_per_ms: u64) -> ServeConfig {
        self.group_rate_hint = bytes_per_ms.max(1);
        self
    }

    /// Sets the service budget.
    pub fn with_budget(mut self, budget: ServiceBudget) -> ServeConfig {
        self.budget = budget;
        self
    }

    /// Arms deterministic chaos injection.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> ServeConfig {
        self.chaos = Some(chaos);
        self
    }

    /// Attaches an observability handle.
    pub fn with_obs(mut self, obs: ObsHandle) -> ServeConfig {
        self.obs = obs;
        self
    }
}
