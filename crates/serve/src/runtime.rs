//! The supervised serving runtime: a fixed worker pool multiplexing many
//! concurrent streaming query sessions, with checkpoint failover.
//!
//! # Architecture
//!
//! ```text
//!              submit / submit_blocking          wait
//!                   │   (admission control:        ▲
//!                   │    bounded queue, byte       │ JobReport
//!                   ▼    budget → shed/reject)     │
//!            ┌─────────────┐                ┌──────┴──────┐
//!            │ submission  │   dispatch     │  jobs map   │
//!            │ queue (VecD)│──────────────▶ │ id → state  │
//!            └─────────────┘                └─────────────┘
//!                   ▲                               ▲
//!        requeue    │        ┌──────────┐           │ complete /
//!        (backoff,  └────────│supervisor│           │ checkpoint /
//!         from last          │(dispatch,│           │ fail
//!         checkpoint)        │ monitor) │           │
//!                            └──────────┘           │
//!                             │  │  │  respawn      │
//!                             ▼  ▼  ▼               │
//!                        ┌────┐┌────┐┌────┐         │
//!                        │ w0 ││ w1 ││ w2 │─────────┘
//!                        └────┘└────┘└────┘
//! ```
//!
//! Workers feed each document through an
//! [`EngineSession`](st_core::session::EngineSession) in
//! cadence-sized segments, minting an [`EngineCheckpoint`] after each —
//! the O(1)/O(depth) snapshot of Theorems 3.1/3.2 is exactly what makes
//! a session *migratable*: when a worker panics or stalls, the
//! supervisor requeues the victim's request with its last checkpoint and
//! a healthy worker resumes from that byte offset, not from zero.
//! Retries back off exponentially and are bounded; the terminal error is
//! typed ([`ServeError::Failed`]) and carries the full failure history.
//!
//! The degradation ladder under pressure: data-parallel chunked path →
//! sequential guarded session path → load shedding at the queue.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use st_automata::{compile_regex, Alphabet};
use st_core::emit::{EmissionCursor, StreamedMatch};
use st_core::engine::FusedQuery;
use st_core::planner::Strategy;
use st_core::queryset::QuerySet;
use st_core::session::{monotonic_clock, ClockFn, EngineCheckpoint, Limits};
use st_obs::{Counter, Gauge, Histogram, ObsHandle, TraceEvent};

use crate::chaos::Fault;
use crate::config::ServeConfig;
use crate::error::{FailureCause, ServeError};

/// Locks a mutex, riding through poisoning: the runtime's own invariants
/// are epoch-guarded, and a worker that panicked mid-update is exactly
/// the fault this runtime exists to absorb.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Identifier of a submitted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One request: a compiled query and the document to run it over.
#[derive(Clone)]
pub struct JobSpec {
    /// The fused engine to evaluate (shared across requests).
    pub query: Arc<FusedQuery>,
    /// The document bytes (shared with retries and checkpoint resumes).
    pub doc: Arc<Vec<u8>>,
    /// Per-session limits; `None` inherits
    /// [`crate::ServiceBudget::session_limits`].
    pub limits: Option<Limits>,
    /// Admission deadline, measured on the runtime clock from the moment
    /// the request is admitted.  A request still *queued* when its
    /// deadline passes is dropped with a typed
    /// [`ServeError::DeadlineExpired`] instead of burning a worker on an
    /// answer nobody is waiting for.  A request already dispatched runs
    /// to completion — mid-flight work is governed by [`Limits`], not
    /// the queue deadline.  `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Whether the submitter consumes the match stream incrementally
    /// (polling [`ServeRuntime::emitted_prefix`] while the request
    /// runs).  Streamed requests get a supervisor-side emission ledger
    /// with exactly-once replay dedup across failovers, and skip the
    /// chunked fast path — which only ever reports at end-of-document.
    pub stream: bool,
}

impl JobSpec {
    /// A request with inherited service-level limits.
    pub fn new(query: Arc<FusedQuery>, doc: impl Into<Arc<Vec<u8>>>) -> JobSpec {
        JobSpec {
            query,
            doc: doc.into(),
            limits: None,
            deadline: None,
            stream: false,
        }
    }

    /// Opts into incremental match delivery; see [`JobSpec::stream`].
    pub fn with_stream(mut self) -> JobSpec {
        self.stream = true;
        self
    }

    /// Overrides the inherited limits for this request.
    pub fn with_limits(mut self, limits: Limits) -> JobSpec {
        self.limits = Some(limits);
        self
    }

    /// Sets the queueing deadline (relative to admission).
    pub fn with_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }
}

/// One multi-query request: a set of path patterns over one alphabet,
/// plus the document to run them all over.
///
/// The dispatcher *batches by document*: queued multi-query requests
/// that target the same document (same bytes, alphabet, and product
/// budget — compared by fingerprint) and inherit the service-level
/// limits are claimed as one group and served by a single shared
/// [`QuerySet`] pass; per-query results are split back out to each
/// request ([`ServeRuntime::wait_multi`]).  A request that carries its
/// own [`Limits`] always runs alone.  Multi-query requests take the
/// shared-session path unconditionally — the chunked fast path and
/// chaos injection apply only to single-query requests.
#[derive(Clone)]
pub struct MultiJobSpec {
    /// The path patterns to evaluate (the per-query result order).
    pub patterns: Vec<String>,
    /// The label alphabet the patterns are compiled over.
    pub alphabet: Alphabet,
    /// The document bytes (shared with retries).
    pub doc: Arc<Vec<u8>>,
    /// Per-session limits; `None` inherits
    /// [`crate::ServiceBudget::session_limits`] and makes the request
    /// eligible for grouping.
    pub limits: Option<Limits>,
    /// Product-DFA state budget override; `None` inherits
    /// [`crate::ServeConfig::product_budget`].
    pub product_budget: Option<usize>,
    /// Admission deadline; see [`JobSpec::deadline`].  An expired queued
    /// request is never pulled into a shared group.
    pub deadline: Option<Duration>,
}

impl MultiJobSpec {
    /// A multi-query request with inherited limits and product budget.
    pub fn new(
        patterns: Vec<String>,
        alphabet: Alphabet,
        doc: impl Into<Arc<Vec<u8>>>,
    ) -> MultiJobSpec {
        MultiJobSpec {
            patterns,
            alphabet,
            doc: doc.into(),
            limits: None,
            product_budget: None,
            deadline: None,
        }
    }

    /// Overrides the inherited limits (and opts out of grouping).
    pub fn with_limits(mut self, limits: Limits) -> MultiJobSpec {
        self.limits = Some(limits);
        self
    }

    /// Overrides the inherited product-DFA state budget.
    pub fn with_product_budget(mut self, budget: usize) -> MultiJobSpec {
        self.product_budget = Some(budget);
        self
    }

    /// Sets the queueing deadline (relative to admission).
    pub fn with_deadline(mut self, deadline: Duration) -> MultiJobSpec {
        self.deadline = Some(deadline);
        self
    }
}

/// Which evaluation path ultimately served a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathTaken {
    /// The data-parallel chunked byte engine (fast path).
    Chunked,
    /// The sequential guarded session path with checkpoint cadence.
    Session,
    /// One shared multi-query pass served this request as part of a
    /// batch-by-document group.
    Shared,
}

/// The final record of one request.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The request's id.
    pub id: JobId,
    /// Match set (document-order node ids) or the typed terminal error.
    pub result: Result<Vec<usize>, ServeError>,
    /// Attempts spent (1 + retries).
    pub attempts: u32,
    /// Checkpoint resumes performed (a resume means a later attempt
    /// continued mid-document instead of restarting).
    pub resumes: u32,
    /// The path that produced the result.
    pub path: PathTaken,
    /// Whether queue/memory pressure degraded this request from the
    /// chunked path to the session path.
    pub degraded: bool,
    /// Every non-terminal failure absorbed along the way, oldest first.
    pub failures: Vec<FailureCause>,
    /// Streamed requests: the full delivered stream (the emission
    /// ledger) — for a completed request its node ids equal `result`'s
    /// match list, each paired with the byte offset that decided it.
    /// Empty for non-streamed requests.
    pub emitted: Vec<StreamedMatch>,
    /// Streamed requests: replayed matches a failover re-derived that
    /// the ledger suppressed instead of re-delivering (the exactly-once
    /// dedup at work; 0 on an uninterrupted run).
    pub suppressed: u64,
}

/// The final record of one multi-query request, with per-query match
/// attribution.  Collected with [`ServeRuntime::wait_multi`].
#[derive(Clone, Debug)]
pub struct MultiJobReport {
    /// The request's id.
    pub id: JobId,
    /// Per-pattern match sets (document-order node ids), in the order
    /// the [`MultiJobSpec`] listed its patterns, or the typed terminal
    /// error.  A single-query request queried this way reports its one
    /// match set as a one-entry list.
    pub results: Result<Vec<Vec<usize>>, ServeError>,
    /// Attempts spent (1 + retries).
    pub attempts: u32,
    /// Requests (including this one) served by the shared pass that
    /// completed this request; 0 when the request never completed via a
    /// shared pass.
    pub group_size: usize,
    /// Every non-terminal failure absorbed along the way, oldest first.
    pub failures: Vec<FailureCause>,
}

/// Counters exposed by [`ServeRuntime::stats`] / [`ServeRuntime::shutdown`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed with a match set.
    pub completed: u64,
    /// Requests that ended in a typed terminal error.
    pub failed: u64,
    /// Submissions shed with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Submissions refused with [`ServeError::Rejected`].
    pub rejected: u64,
    /// Attempts requeued for retry.
    pub retries: u64,
    /// Checkpoint resumes (mid-document failovers).
    pub resumes: u64,
    /// Worker panics absorbed.
    pub panics: u64,
    /// Worker stalls detected and abandoned.
    pub stalls: u64,
    /// Corrupt segments detected.
    pub corruptions: u64,
    /// Requests degraded from the chunked to the session path.
    pub degraded: u64,
    /// Checkpoints minted.
    pub checkpoints: u64,
    /// Worker threads spawned (initial pool + replacements).
    pub workers_spawned: u64,
    /// Shared multi-query passes run (each serves a whole group).
    pub multi_groups: u64,
    /// Requests served by shared multi-query passes.
    pub multi_group_members: u64,
    /// Queued requests dropped because their deadline passed before a
    /// worker picked them up ([`ServeError::DeadlineExpired`]).
    pub deadline_expired: u64,
    /// Matches appended to streamed requests' emission ledgers (each is
    /// one exactly-once delivery; deterministic for a given workload).
    pub emitted: u64,
    /// Replayed matches suppressed by ledger dedup after failovers
    /// (timing-dependent, like `retries`).
    pub emission_suppressed: u64,
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted {} completed {} failed {} shed {} rejected {} | \
             retries {} resumes {} panics {} stalls {} corruptions {} | \
             degraded {} checkpoints {} workers-spawned {} | \
             multi-groups {} multi-members {} deadline-expired {} | \
             emitted {} emission-suppressed {}",
            self.submitted,
            self.completed,
            self.failed,
            self.shed,
            self.rejected,
            self.retries,
            self.resumes,
            self.panics,
            self.stalls,
            self.corruptions,
            self.degraded,
            self.checkpoints,
            self.workers_spawned,
            self.multi_groups,
            self.multi_group_members,
            self.deadline_expired,
            self.emitted,
            self.emission_suppressed
        )
    }
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

enum Status {
    Queued,
    Running,
    Done(Result<Vec<usize>, ServeError>),
}

/// The last good checkpoint of a request, with the matches accumulated
/// up to it (node ids are global, so prefix + tail concatenation
/// reproduces the uninterrupted run — the session layer's contract).
#[derive(Clone)]
struct ResumePoint {
    checkpoint: EngineCheckpoint,
    matches: Vec<usize>,
}

/// A validated multi-query request as the runtime holds it.
struct MultiWork {
    patterns: Vec<String>,
    alphabet: Alphabet,
    doc: Arc<Vec<u8>>,
    limits: Option<Limits>,
    deadline: Option<Duration>,
    /// Resolved product-DFA state budget.
    budget: usize,
    /// Grouping key: fingerprint of (doc bytes, alphabet, budget).
    fp: u64,
}

/// What a job evaluates: one fused query, or a query set eligible for
/// batch-by-document grouping.
#[derive(Clone)]
enum Work {
    Single(Arc<JobSpec>),
    Multi(Arc<MultiWork>),
}

impl Work {
    fn doc_len(&self) -> usize {
        match self {
            Work::Single(s) => s.doc.len(),
            Work::Multi(m) => m.doc.len(),
        }
    }

    fn deadline(&self) -> Option<Duration> {
        match self {
            Work::Single(s) => s.deadline,
            Work::Multi(m) => m.deadline,
        }
    }
}

/// FNV-1a grouping fingerprint of a multi-query request's shared-pass
/// identity: two requests group iff document bytes, alphabet, and
/// product budget all agree.
fn group_fingerprint(doc: &[u8], alphabet: &Alphabet, budget: usize) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in doc {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    for (_, symbol) in alphabet.entries() {
        for &b in symbol.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        h = (h ^ 0xFF).wrapping_mul(PRIME);
    }
    for b in (budget as u64).to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

struct JobState {
    work: Work,
    /// Current attempt number (1-based).  Writes from older attempts —
    /// a stalled worker waking up, a panicking worker's final report
    /// racing the supervisor — are discarded by comparing against this.
    attempt: u32,
    resume: Option<ResumePoint>,
    resumes: u32,
    failures: Vec<FailureCause>,
    status: Status,
    path: PathTaken,
    degraded: bool,
    /// Admission timestamp (ms since runtime epoch), for the terminal
    /// latency histogram.
    submitted_ms: u64,
    /// Absolute queueing deadline (ms since runtime epoch); a request
    /// still queued past it is dropped with
    /// [`ServeError::DeadlineExpired`].
    deadline_ms: Option<u64>,
    /// Multi jobs: per-pattern match sets, set at completion.
    multi_results: Option<Vec<Vec<usize>>>,
    /// Multi jobs: how many requests the completing shared pass served.
    group_size: usize,
    /// Streamed jobs: every match delivered so far, in emission order.
    /// Append-only — the delivery point of exactly-once.  Replays after
    /// a failover are verified against it and suppressed, never
    /// re-appended; entries survive retries and resumes untouched.
    ledger: Vec<StreamedMatch>,
    /// Streamed jobs: replayed matches the ledger suppressed.
    suppressed: u64,
}

struct Pending {
    id: u64,
    /// Earliest dispatch time (ms since runtime epoch); retries carry
    /// their exponential backoff here.
    not_before_ms: u64,
}

struct QueueState {
    q: VecDeque<Pending>,
    shutdown: bool,
}

struct WorkerSlot {
    /// Cleared by a drop sentinel when the worker thread dies.
    alive: AtomicBool,
    /// Set by the supervisor when it gives up on a stalled worker; the
    /// zombie's slot is replaced and its late writes are epoch-guarded.
    abandoned: AtomicBool,
    /// The assignment this worker currently runs.
    busy: Mutex<Option<Assignment>>,
    /// Last liveness signal (ms since runtime epoch); ticks once per
    /// checkpoint cadence.
    heartbeat_ms: AtomicU64,
}

/// One unit of worker work: a single job, or a whole multi-query group
/// claimed for one shared pass (every `(job, attempt)` pair is already
/// marked Running).
#[derive(Clone)]
struct Assignment {
    group: Vec<(u64, u32)>,
}

struct WorkerHandle {
    slot: Arc<WorkerSlot>,
    tx: Option<Sender<Assignment>>,
    join: Option<JoinHandle<()>>,
}

/// Pre-resolved observability instruments for the runtime's hot sites.
///
/// Each counter mirrors one [`ServeStats`] atomic and is incremented at
/// *exactly* the same site, so a metrics snapshot and a stats snapshot
/// taken after drain agree number-for-number.  With a disabled handle
/// every instrument is inert (one branch per record, no allocation).
struct ServeObs {
    handle: ObsHandle,
    submitted: Counter,
    completed: Counter,
    failed: Counter,
    shed: Counter,
    rejected: Counter,
    retries: Counter,
    resumes: Counter,
    panics: Counter,
    stalls: Counter,
    corruptions: Counter,
    degraded: Counter,
    checkpoints: Counter,
    workers_spawned: Counter,
    multi_groups: Counter,
    multi_group_members: Counter,
    deadline_expired: Counter,
    emitted: Counter,
    emission_suppressed: Counter,
    /// Requests per shared multi-query pass.
    multi_group_size: Histogram,
    /// Current submission-queue occupancy.
    queue_depth: Gauge,
    /// Bytes currently held against the in-flight budget.
    in_flight_bytes: Gauge,
    /// Attempts each finished request consumed (recorded at terminal
    /// completion or failure).
    request_attempts: Histogram,
    /// Wall-clock (runtime-clock) milliseconds from admission to
    /// terminal state, per finished request.
    request_latency_ms: Histogram,
}

impl ServeObs {
    fn attach(handle: &ObsHandle) -> ServeObs {
        ServeObs {
            submitted: handle.counter("serve_submitted_total"),
            completed: handle.counter("serve_completed_total"),
            failed: handle.counter("serve_failed_total"),
            shed: handle.counter("serve_shed_total"),
            rejected: handle.counter("serve_rejected_total"),
            retries: handle.counter("serve_retries_total"),
            resumes: handle.counter("serve_resumes_total"),
            panics: handle.counter("serve_panics_total"),
            stalls: handle.counter("serve_stalls_total"),
            corruptions: handle.counter("serve_corruptions_total"),
            degraded: handle.counter("serve_degraded_total"),
            checkpoints: handle.counter("serve_checkpoints_total"),
            workers_spawned: handle.counter("serve_workers_spawned_total"),
            multi_groups: handle.counter("serve_multi_groups_total"),
            multi_group_members: handle.counter("serve_multi_group_members_total"),
            deadline_expired: handle.counter("serve_deadline_expired_total"),
            emitted: handle.counter("serve_emissions_total"),
            emission_suppressed: handle.counter("serve_emission_suppressed_total"),
            multi_group_size: handle.histogram("serve_multi_group_size"),
            queue_depth: handle.gauge("serve_queue_depth"),
            in_flight_bytes: handle.gauge("serve_in_flight_bytes"),
            request_attempts: handle.histogram("serve_request_attempts"),
            request_latency_ms: handle.histogram("serve_request_latency_ms"),
            handle: handle.clone(),
        }
    }

    fn trace(&self, event: TraceEvent) {
        self.handle.trace(event);
    }
}

/// The stable cause label carried by [`TraceEvent::JobFailed`].
fn cause_label(cause: &FailureCause) -> &'static str {
    match cause {
        FailureCause::WorkerPanic { .. } => "worker_panic",
        FailureCause::WorkerStall { .. } => "worker_stall",
        FailureCause::SegmentCorrupted { .. } => "segment_corrupted",
        FailureCause::Engine(_) => "engine",
        FailureCause::EmissionLedger { .. } => "emission_ledger",
    }
}

struct Inner {
    cfg: ServeConfig,
    /// The runtime clock: the budget's injected [`ClockFn`] when one was
    /// set (so stall detection and backoff are testable without real
    /// time), else [`monotonic_clock`].
    clock: ClockFn,
    /// `clock()` at startup; all runtime timestamps are relative to it.
    epoch: Duration,
    obs: ServeObs,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    jobs: Mutex<HashMap<u64, JobState>>,
    jobs_cv: Condvar,
    in_flight_bytes: AtomicUsize,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    retries: AtomicU64,
    resumes: AtomicU64,
    panics: AtomicU64,
    stalls: AtomicU64,
    corruptions: AtomicU64,
    degraded: AtomicU64,
    checkpoints: AtomicU64,
    workers_spawned: AtomicU64,
    multi_groups: AtomicU64,
    multi_group_members: AtomicU64,
    deadline_expired: AtomicU64,
    emitted: AtomicU64,
    emission_suppressed: AtomicU64,
    /// EWMA throughput of completed shared multi-query passes, in
    /// bytes/ms on the runtime clock (0 until the first measured pass).
    /// Feeds the deadline-aware grouping projection in [`try_assign`].
    group_rate_bpms: AtomicU64,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        (self.clock)().saturating_sub(self.epoch).as_millis() as u64
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            resumes: self.resumes.load(Ordering::SeqCst),
            panics: self.panics.load(Ordering::SeqCst),
            stalls: self.stalls.load(Ordering::SeqCst),
            corruptions: self.corruptions.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
            checkpoints: self.checkpoints.load(Ordering::SeqCst),
            workers_spawned: self.workers_spawned.load(Ordering::SeqCst),
            multi_groups: self.multi_groups.load(Ordering::SeqCst),
            multi_group_members: self.multi_group_members.load(Ordering::SeqCst),
            deadline_expired: self.deadline_expired.load(Ordering::SeqCst),
            emitted: self.emitted.load(Ordering::SeqCst),
            emission_suppressed: self.emission_suppressed.load(Ordering::SeqCst),
        }
    }

    /// The shared-pass throughput estimate used to project a group's
    /// finish time: the measured EWMA when at least one pass completed,
    /// else the configured hint.  Always ≥ 1 byte/ms.
    fn group_rate(&self) -> u64 {
        let measured = self.group_rate_bpms.load(Ordering::SeqCst);
        let rate = if measured > 0 {
            measured
        } else {
            self.cfg.group_rate_hint
        };
        rate.max(1)
    }

    /// Folds a completed shared pass (`bytes` over `elapsed_ms`) into
    /// the EWMA throughput estimate.
    fn observe_group_rate(&self, bytes: usize, elapsed_ms: u64) {
        if bytes == 0 {
            return;
        }
        let sample = (bytes as u64) / elapsed_ms.max(1);
        let sample = sample.max(1);
        let old = self.group_rate_bpms.load(Ordering::SeqCst);
        let new = if old == 0 {
            sample
        } else {
            (3 * old + sample) / 4
        };
        self.group_rate_bpms.store(new, Ordering::SeqCst);
    }

    /// Drops a request whose deadline passed while it was queued: a
    /// typed terminal [`ServeError::DeadlineExpired`], no worker time
    /// spent.  Returns whether the request was expired (false when it is
    /// no longer queued, carries no deadline, or is not yet due).
    fn expire_if_due(&self, job: u64, now_ms: u64) -> bool {
        let waited_ms;
        {
            let mut jobs = lock(&self.jobs);
            let Some(st) = jobs.get_mut(&job) else {
                return false;
            };
            if !matches!(st.status, Status::Queued) {
                return false;
            }
            match st.deadline_ms {
                Some(d) if now_ms >= d => {}
                _ => return false,
            }
            waited_ms = now_ms.saturating_sub(st.submitted_ms);
            let attempts = st.attempt;
            st.status = Status::Done(Err(ServeError::DeadlineExpired { waited_ms }));
            let bytes = st.work.doc_len();
            let held = self.in_flight_bytes.fetch_sub(bytes, Ordering::SeqCst);
            self.obs.in_flight_bytes.set((held - bytes) as i64);
            self.obs.request_attempts.record(attempts as u64);
            self.obs.request_latency_ms.record(waited_ms);
            self.obs.trace(TraceEvent::JobFailed {
                job,
                attempts,
                cause: "deadline_expired",
            });
        }
        self.failed.fetch_add(1, Ordering::SeqCst);
        self.obs.failed.incr();
        self.deadline_expired.fetch_add(1, Ordering::SeqCst);
        self.obs.deadline_expired.incr();
        self.jobs_cv.notify_all();
        self.queue_cv.notify_all();
        true
    }

    /// Whether the degradation ladder should step down from the chunked
    /// to the session path: queue occupancy at/over the configured
    /// fraction, or the in-flight byte budget half consumed.
    fn pressure_high(&self) -> bool {
        let qlen = lock(&self.queue).q.len();
        if qlen * 100 >= self.cfg.queue_capacity * self.cfg.degrade_at_percent {
            return true;
        }
        if let Some(mb) = self.cfg.budget.max_in_flight_bytes {
            if self.in_flight_bytes.load(Ordering::SeqCst) * 2 >= mb {
                return true;
            }
        }
        false
    }

    /// Records a successful completion for `(job, attempt)`.  A stale
    /// attempt (superseded by failover) is discarded.
    fn complete(&self, job: u64, attempt: u32, matches: Vec<usize>, path: PathTaken) {
        let bytes;
        let n_matches = matches.len() as u64;
        let submitted_ms;
        {
            let mut jobs = lock(&self.jobs);
            let Some(st) = jobs.get_mut(&job) else { return };
            if st.attempt != attempt || matches!(st.status, Status::Done(_)) {
                return;
            }
            st.status = Status::Done(Ok(matches));
            st.path = path;
            bytes = st.work.doc_len();
            submitted_ms = st.submitted_ms;
        }
        let held = self.in_flight_bytes.fetch_sub(bytes, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::SeqCst);
        self.obs.completed.incr();
        self.obs.in_flight_bytes.set((held - bytes) as i64);
        self.obs.request_attempts.record(attempt as u64);
        self.obs
            .request_latency_ms
            .record(self.now_ms().saturating_sub(submitted_ms));
        self.obs.trace(TraceEvent::JobCompleted {
            job,
            attempts: attempt,
            matches: n_matches,
        });
        self.jobs_cv.notify_all();
        self.queue_cv.notify_all();
    }

    /// Records a multi-query completion for `(job, attempt)`: the
    /// per-pattern attribution plus, in the plain report, the union of
    /// the per-query match sets (document order, deduped).  A stale
    /// attempt is discarded.
    fn complete_multi(
        &self,
        job: u64,
        attempt: u32,
        per_query: Vec<Vec<usize>>,
        group_size: usize,
    ) {
        let bytes;
        let submitted_ms;
        let n_matches: u64 = per_query.iter().map(|m| m.len() as u64).sum();
        {
            let mut jobs = lock(&self.jobs);
            let Some(st) = jobs.get_mut(&job) else { return };
            if st.attempt != attempt || matches!(st.status, Status::Done(_)) {
                return;
            }
            let mut union: Vec<usize> = per_query.iter().flatten().copied().collect();
            union.sort_unstable();
            union.dedup();
            st.multi_results = Some(per_query);
            st.group_size = group_size;
            st.status = Status::Done(Ok(union));
            st.path = PathTaken::Shared;
            bytes = st.work.doc_len();
            submitted_ms = st.submitted_ms;
        }
        let held = self.in_flight_bytes.fetch_sub(bytes, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::SeqCst);
        self.obs.completed.incr();
        self.obs.in_flight_bytes.set((held - bytes) as i64);
        self.obs.request_attempts.record(attempt as u64);
        self.obs
            .request_latency_ms
            .record(self.now_ms().saturating_sub(submitted_ms));
        self.obs.trace(TraceEvent::JobCompleted {
            job,
            attempts: attempt,
            matches: n_matches,
        });
        self.jobs_cv.notify_all();
        self.queue_cv.notify_all();
    }

    /// Stores the latest good checkpoint (and the matches up to it) so a
    /// failover can resume mid-document.
    fn store_resume(&self, job: u64, attempt: u32, cp: EngineCheckpoint, matches: Vec<usize>) {
        let mut jobs = lock(&self.jobs);
        let Some(st) = jobs.get_mut(&job) else { return };
        if st.attempt != attempt || matches!(st.status, Status::Done(_)) {
            return;
        }
        st.resume = Some(ResumePoint {
            checkpoint: cp,
            matches,
        });
        self.checkpoints.fetch_add(1, Ordering::SeqCst);
        self.obs.checkpoints.incr();
    }

    /// Records a batch of matches a worker claims to have emitted
    /// starting at stream position `start` (0-based index into the
    /// emitted sequence).  This is the delivery point of exactly-once:
    ///
    /// * positions already in the ledger are **verified** against it —
    ///   a replayed match must be identical to what was delivered, and a
    ///   divergence is a typed [`FailureCause::EmissionLedger`] failure,
    ///   never a silent duplicate;
    /// * positions past the ledger are **appended** (delivered);
    /// * a batch starting beyond the ledger's end claims deliveries the
    ///   supervisor never saw (forged cursor) and fails the request.
    ///
    /// Stale attempts (superseded by failover) are discarded without
    /// effect, as is a batch for a finished request.
    fn record_emissions(
        &self,
        job: u64,
        attempt: u32,
        start: usize,
        batch: &[StreamedMatch],
    ) -> Result<(), FailureCause> {
        let mut appended = 0u64;
        let mut replayed = 0u64;
        {
            let mut jobs = lock(&self.jobs);
            let Some(st) = jobs.get_mut(&job) else {
                return Ok(());
            };
            if st.attempt != attempt || matches!(st.status, Status::Done(_)) {
                return Ok(());
            }
            if start > st.ledger.len() {
                return Err(FailureCause::EmissionLedger {
                    detail: format!(
                        "batch starts at stream position {start} but only {} \
                         matches were ever delivered",
                        st.ledger.len()
                    ),
                });
            }
            for (k, &m) in batch.iter().enumerate() {
                let idx = start + k;
                if idx < st.ledger.len() {
                    let delivered = st.ledger[idx];
                    if delivered != m {
                        return Err(FailureCause::EmissionLedger {
                            detail: format!(
                                "replay diverged at stream position {idx}: \
                                 delivered node {} at byte {}, replay claims \
                                 node {} at byte {}",
                                delivered.node, delivered.offset, m.node, m.offset
                            ),
                        });
                    }
                    replayed += 1;
                } else {
                    st.ledger.push(m);
                    appended += 1;
                }
            }
            st.suppressed += replayed;
        }
        if appended > 0 {
            self.emitted.fetch_add(appended, Ordering::SeqCst);
            self.obs.emitted.add(appended);
        }
        if replayed > 0 {
            self.emission_suppressed
                .fetch_add(replayed, Ordering::SeqCst);
            self.obs.emission_suppressed.add(replayed);
        }
        Ok(())
    }

    /// Verifies a resumed attempt's emission cursor against the ledger
    /// before any of its output is accepted: the cursor must not claim
    /// more deliveries than the ledger holds, and its digest must equal
    /// the digest of the delivered prefix it claims.  A hostile or
    /// corrupted checkpoint fails here with a typed error instead of
    /// poisoning the stream.
    fn verify_resume_cursor(
        &self,
        job: u64,
        attempt: u32,
        cursor: EmissionCursor,
    ) -> Result<(), FailureCause> {
        let jobs = lock(&self.jobs);
        let Some(st) = jobs.get(&job) else {
            return Ok(());
        };
        if st.attempt != attempt || matches!(st.status, Status::Done(_)) {
            return Ok(());
        }
        let count = cursor.count as usize;
        if count > st.ledger.len() {
            return Err(FailureCause::EmissionLedger {
                detail: format!(
                    "resume cursor claims {count} deliveries but only {} \
                     matches were ever delivered",
                    st.ledger.len()
                ),
            });
        }
        let reference = EmissionCursor::over(&st.ledger[..count]);
        if reference.digest != cursor.digest {
            return Err(FailureCause::EmissionLedger {
                detail: format!(
                    "resume cursor digest {:#018x} does not match the \
                     delivered prefix of {count} matches ({:#018x})",
                    cursor.digest, reference.digest
                ),
            });
        }
        Ok(())
    }

    /// Verifies, at completion time, that a streamed request's delivered
    /// stream equals its final match list — same node ids, same order —
    /// and that the session's final cursor equals the ledger's.
    fn verify_final_emissions(
        &self,
        job: u64,
        attempt: u32,
        matches: &[usize],
        cursor: EmissionCursor,
    ) -> Result<(), FailureCause> {
        let jobs = lock(&self.jobs);
        let Some(st) = jobs.get(&job) else {
            return Ok(());
        };
        if st.attempt != attempt || matches!(st.status, Status::Done(_)) {
            return Ok(());
        }
        if st.ledger.len() != matches.len()
            || st.ledger.iter().map(|m| m.node).ne(matches.iter().copied())
        {
            return Err(FailureCause::EmissionLedger {
                detail: format!(
                    "delivered stream ({} matches) does not equal the final \
                     match list ({} matches)",
                    st.ledger.len(),
                    matches.len()
                ),
            });
        }
        let reference = EmissionCursor::over(&st.ledger);
        if reference != cursor {
            return Err(FailureCause::EmissionLedger {
                detail: format!(
                    "final cursor (count {}, digest {:#018x}) does not match \
                     the delivered stream (count {}, digest {:#018x})",
                    cursor.count, cursor.digest, reference.count, reference.digest
                ),
            });
        }
        Ok(())
    }

    fn note_resume(&self, job: u64, attempt: u32) {
        let mut jobs = lock(&self.jobs);
        if let Some(st) = jobs.get_mut(&job) {
            if st.attempt == attempt {
                st.resumes += 1;
            }
        }
        self.resumes.fetch_add(1, Ordering::SeqCst);
        self.obs.resumes.incr();
    }

    fn mark_degraded(&self, job: u64, attempt: u32) {
        let mut jobs = lock(&self.jobs);
        if let Some(st) = jobs.get_mut(&job) {
            if st.attempt == attempt {
                st.degraded = true;
            }
        }
        self.degraded.fetch_add(1, Ordering::SeqCst);
        self.obs.degraded.incr();
        self.obs.trace(TraceEvent::Degraded { job });
    }

    /// Records a failed attempt: requeues with exponential backoff when
    /// the cause is retryable and the retry budget allows, otherwise
    /// finalizes the request with a typed [`ServeError::Failed`].
    fn record_attempt_failure(&self, job: u64, attempt: u32, cause: FailureCause) {
        let mut requeue_backoff = None;
        {
            let mut jobs = lock(&self.jobs);
            let Some(st) = jobs.get_mut(&job) else { return };
            if st.attempt != attempt || matches!(st.status, Status::Done(_)) {
                return;
            }
            // Count the fault only once it is attributed to the live
            // attempt; stale duplicates (the reap backstop re-reporting a
            // death the worker already recorded, a zombie's late fault)
            // returned above and must not inflate the counters.
            match &cause {
                FailureCause::WorkerPanic { .. } => {
                    self.panics.fetch_add(1, Ordering::SeqCst);
                    self.obs.panics.incr();
                    self.obs.trace(TraceEvent::WorkerPanic { job, attempt });
                }
                FailureCause::WorkerStall { stalled_ms } => {
                    self.stalls.fetch_add(1, Ordering::SeqCst);
                    self.obs.stalls.incr();
                    self.obs.trace(TraceEvent::WorkerStall {
                        job,
                        attempt,
                        silent_ms: *stalled_ms,
                    });
                }
                FailureCause::SegmentCorrupted { .. } => {
                    self.corruptions.fetch_add(1, Ordering::SeqCst);
                    self.obs.corruptions.incr();
                    self.obs
                        .trace(TraceEvent::SegmentCorrupted { job, attempt });
                }
                FailureCause::Engine(_) => {}
                FailureCause::EmissionLedger { .. } => {}
            }
            let retry = cause.retryable() && st.attempt <= self.cfg.max_retries;
            st.failures.push(cause.clone());
            if retry {
                st.attempt += 1;
                st.status = Status::Queued;
                let exp = (attempt - 1).min(16);
                let backoff = self.cfg.backoff_base * 2u32.pow(exp);
                requeue_backoff = Some(backoff);
                self.retries.fetch_add(1, Ordering::SeqCst);
                self.obs.retries.incr();
                self.obs.trace(TraceEvent::Retry {
                    job,
                    attempt,
                    backoff_ms: backoff.as_millis() as u64,
                });
            } else {
                let attempts = st.attempt;
                let label = cause_label(&cause);
                st.status = Status::Done(Err(ServeError::Failed {
                    attempts: st.attempt,
                    last: cause,
                }));
                let bytes = st.work.doc_len();
                let held = self.in_flight_bytes.fetch_sub(bytes, Ordering::SeqCst);
                self.failed.fetch_add(1, Ordering::SeqCst);
                self.obs.failed.incr();
                self.obs.in_flight_bytes.set((held - bytes) as i64);
                self.obs.request_attempts.record(attempts as u64);
                self.obs
                    .request_latency_ms
                    .record(self.now_ms().saturating_sub(st.submitted_ms));
                self.obs.trace(TraceEvent::JobFailed {
                    job,
                    attempts,
                    cause: label,
                });
            }
        }
        match requeue_backoff {
            Some(backoff) => {
                let due = self.now_ms() + backoff.as_millis() as u64;
                let mut q = lock(&self.queue);
                q.q.push_back(Pending {
                    id: job,
                    not_before_ms: due,
                });
                self.obs.queue_depth.set(q.q.len() as i64);
                drop(q);
                self.queue_cv.notify_all();
            }
            None => {
                self.jobs_cv.notify_all();
                self.queue_cv.notify_all();
            }
        }
    }

    fn report_of(&self, id: u64, st: &JobState) -> Option<JobReport> {
        match &st.status {
            Status::Done(result) => Some(JobReport {
                id: JobId(id),
                result: result.clone(),
                attempts: st.attempt,
                resumes: st.resumes,
                path: st.path,
                degraded: st.degraded,
                failures: st.failures.clone(),
                emitted: st.ledger.clone(),
                suppressed: st.suppressed,
            }),
            _ => None,
        }
    }

    fn multi_report_of(&self, id: u64, st: &JobState) -> Option<MultiJobReport> {
        match &st.status {
            Status::Done(result) => Some(MultiJobReport {
                id: JobId(id),
                results: match (result, &st.multi_results) {
                    (Ok(_), Some(per)) => Ok(per.clone()),
                    // A single-query job queried through the multi API
                    // reports its one match set as a one-entry list.
                    (Ok(union), None) => Ok(vec![union.clone()]),
                    (Err(e), _) => Err(e.clone()),
                },
                attempts: st.attempt,
                group_size: st.group_size,
                failures: st.failures.clone(),
            }),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Sets `alive = false` when the worker thread exits — by any route,
/// including a panic unwinding through `worker_main`.
struct Sentinel(Arc<WorkerSlot>);

impl Drop for Sentinel {
    fn drop(&mut self) {
        self.0.alive.store(false, Ordering::SeqCst);
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn worker_main(inner: Arc<Inner>, slot: Arc<WorkerSlot>, rx: Receiver<Assignment>) {
    let _sentinel = Sentinel(slot.clone());
    while let Ok(a) = rx.recv() {
        match catch_unwind(AssertUnwindSafe(|| run_group(&inner, &slot, &a.group))) {
            Ok(()) => *lock(&slot.busy) = None,
            Err(payload) => {
                // Report the death against every request of the group
                // (so failover starts immediately instead of waiting
                // for the supervisor's sweep), then die authentically:
                // the supervisor replaces the thread.  `busy` stays set
                // through the death — clearing it here would open a
                // window where the dispatcher assigns a request to this
                // still-`alive`, already-unwinding thread, burning one
                // of its attempts on a worker that will never run it.
                let detail = payload_message(payload.as_ref());
                for &(job, attempt) in &a.group {
                    inner.record_attempt_failure(
                        job,
                        attempt,
                        FailureCause::WorkerPanic {
                            detail: detail.clone(),
                        },
                    );
                }
                resume_unwind(payload);
            }
        }
    }
}

/// Runs one assignment: a lone single-query job takes the existing
/// chunked/session ladder; everything else is a multi-query group
/// served by one shared pass.
fn run_group(inner: &Arc<Inner>, slot: &WorkerSlot, group: &[(u64, u32)]) {
    if let [(job, attempt)] = group {
        let is_single = {
            let jobs = lock(&inner.jobs);
            matches!(jobs.get(job).map(|st| &st.work), Some(Work::Single(_)))
        };
        if is_single {
            return run_job(inner, slot, *job, *attempt);
        }
    }
    run_multi_group(inner, slot, group);
}

/// Serves one batch-by-document group with a single shared
/// [`QuerySet`] pass and splits per-query results back to each member.
fn run_multi_group(inner: &Arc<Inner>, slot: &WorkerSlot, group: &[(u64, u32)]) {
    // Re-validate each member against its live attempt; stale members
    // (superseded while queued for this worker) drop out of the pass.
    let mut members: Vec<(u64, u32, Arc<MultiWork>)> = Vec::with_capacity(group.len());
    {
        let jobs = lock(&inner.jobs);
        for &(job, attempt) in group {
            if let Some(st) = jobs.get(&job) {
                if st.attempt == attempt && matches!(st.status, Status::Running) {
                    if let Work::Multi(w) = &st.work {
                        members.push((job, attempt, w.clone()));
                    }
                }
            }
        }
    }
    if members.is_empty() {
        return;
    }
    let lead = members[0].0;
    let lead_work = members[0].2.clone();
    let cfg = &inner.cfg;
    let doc: &[u8] = lead_work.doc.as_slice();

    // One shared compile over the union of every member's patterns;
    // spans remember which slice of the union belongs to which member.
    let mut all_patterns: Vec<&str> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(members.len());
    for (_, _, w) in &members {
        spans.push((all_patterns.len(), w.patterns.len()));
        all_patterns.extend(w.patterns.iter().map(String::as_str));
    }
    let set = QuerySet::compile_with_budget(&all_patterns, &lead_work.alphabet, lead_work.budget)
        .expect("multi-query patterns were validated at admission");

    // A singleton group honors the request's own limits; grouping only
    // ever batches requests that inherit the service defaults.
    let requested = if members.len() == 1 {
        members[0].2.limits.as_ref()
    } else {
        None
    };
    let limits = cfg.budget.session_limits_for(requested, &cfg.obs);
    let mut session = set.session(limits);
    if inner.obs.handle.is_enabled() {
        for (job, _, _) in &members {
            inner.obs.trace(TraceEvent::JobSession {
                job: *job,
                session: session.obs_session_id(),
            });
        }
    }
    let cadence = cfg.checkpoint_every.max(1);
    let pass_start_ms = inner.now_ms();
    let mut off = 0usize;
    while off < doc.len() {
        let end = (off + cadence).min(doc.len());
        if let Err(e) = session.feed(&doc[off..end]) {
            for (job, attempt, _) in &members {
                inner.record_attempt_failure(*job, *attempt, FailureCause::Engine(e.clone()));
            }
            return;
        }
        off = end;
        slot.heartbeat_ms.store(inner.now_ms(), Ordering::SeqCst);
    }
    match session.finish() {
        Ok(out) => {
            inner.observe_group_rate(doc.len(), inner.now_ms().saturating_sub(pass_start_ms));
            let n = members.len();
            for ((job, attempt, _), &(start, len)) in members.iter().zip(&spans) {
                let per_query = out.matches[start..start + len].to_vec();
                inner.complete_multi(*job, *attempt, per_query, n);
            }
            inner.multi_groups.fetch_add(1, Ordering::SeqCst);
            inner
                .multi_group_members
                .fetch_add(n as u64, Ordering::SeqCst);
            inner.obs.multi_groups.incr();
            inner.obs.multi_group_members.add(n as u64);
            inner.obs.multi_group_size.record(n as u64);
            inner.obs.trace(TraceEvent::SharedPass {
                job: lead,
                members: n as u64,
                queries: all_patterns.len() as u64,
            });
        }
        Err(e) => {
            for (job, attempt, _) in &members {
                inner.record_attempt_failure(*job, *attempt, FailureCause::Engine(e.clone()));
            }
        }
    }
}

/// Runs one attempt of one request on this worker.
fn run_job(inner: &Arc<Inner>, slot: &WorkerSlot, job: u64, attempt: u32) {
    let (spec, resume) = {
        let jobs = lock(&inner.jobs);
        match jobs.get(&job) {
            Some(st) if st.attempt == attempt && matches!(st.status, Status::Running) => {
                match &st.work {
                    Work::Single(spec) => (spec.clone(), st.resume.clone()),
                    Work::Multi(_) => return,
                }
            }
            _ => return,
        }
    };
    let cfg = &inner.cfg;
    let doc: &[u8] = spec.doc.as_slice();
    let limits = cfg
        .budget
        .session_limits_for(spec.limits.as_ref(), &cfg.obs);

    // Fast path: the data-parallel chunked engine, for large registerless
    // documents on a fresh, guard-free, chaos-free attempt.  Under
    // pressure the degradation ladder steps down to the session path.
    // Streamed requests never take the chunked path: it reports only at
    // end-of-document, and the whole point of streaming is delivery at
    // the certainty frontier.
    let chunk_eligible = cfg.chaos.is_none()
        && attempt == 1
        && resume.is_none()
        && !spec.stream
        && doc.len() >= cfg.parallel_threshold
        && spec.query.strategy() == Strategy::Registerless
        && limits.is_unbounded();
    if chunk_eligible {
        if inner.pressure_high() {
            inner.mark_degraded(job, attempt);
        } else {
            slot.heartbeat_ms.store(inner.now_ms(), Ordering::SeqCst);
            match spec.query.select_bytes_parallel(doc, cfg.chunk_threads) {
                Ok(m) => return inner.complete(job, attempt, m, PathTaken::Chunked),
                Err(e) => {
                    return inner.record_attempt_failure(job, attempt, FailureCause::Engine(e))
                }
            }
        }
    }

    // Guarded session path with checkpoint cadence.
    let prefix = resume
        .as_ref()
        .map(|r| r.matches.clone())
        .unwrap_or_default();
    let mut session = match &resume {
        Some(r) => match spec.query.resume(&r.checkpoint, limits) {
            Ok(s) => {
                inner.note_resume(job, attempt);
                inner.obs.trace(TraceEvent::Failover {
                    job,
                    attempt,
                    offset: r.checkpoint.offset() as u64,
                });
                s
            }
            Err(e) => return inner.record_attempt_failure(job, attempt, FailureCause::Engine(e)),
        },
        None => spec.query.session(limits),
    };
    // A resumed streamed attempt's cursor is verified against the ledger
    // before any of its output is accepted: a hostile checkpoint (forged
    // count, tampered digest) dies here with a typed error instead of
    // letting replay dedup silently mis-align.
    if spec.stream {
        if let Err(cause) = inner.verify_resume_cursor(job, attempt, session.emission_cursor()) {
            return inner.record_attempt_failure(job, attempt, cause);
        }
    }
    if inner.obs.handle.is_enabled() {
        inner.obs.trace(TraceEvent::JobSession {
            job,
            session: session.obs_session_id(),
        });
    }
    let cadence = cfg.checkpoint_every.max(1);
    let mut off = session.offset();
    while off < doc.len() {
        let end = (off + cadence).min(doc.len());
        let fault = cfg.chaos.as_ref().map_or(Fault::None, |c| {
            c.roll(job, attempt, (off / cadence) as u64)
        });
        match fault {
            Fault::Panic => {
                panic!("chaos: injected worker panic (job {job}, attempt {attempt}, offset {off})")
            }
            Fault::Corrupt => {
                return inner.record_attempt_failure(
                    job,
                    attempt,
                    FailureCause::SegmentCorrupted { offset: off },
                );
            }
            Fault::Stall => {
                // Sleep through the supervisor's deadline; by the time
                // this worker wakes, it has been abandoned and all its
                // further writes are stale no-ops.
                std::thread::sleep(Duration::from_millis(
                    cfg.chaos.as_ref().map_or(0, |c| c.stall_ms),
                ));
            }
            Fault::None => {}
        }
        if let Err(e) = session.feed(&doc[off..end]) {
            return inner.record_attempt_failure(job, attempt, FailureCause::Engine(e));
        }
        off = end;
        slot.heartbeat_ms.store(inner.now_ms(), Ordering::SeqCst);
        // Deliver what crossed the certainty frontier *before* storing
        // the checkpoint: the ledger may then run ahead of the stored
        // cursor (matches recorded after the last stored checkpoint),
        // which is exactly the replay window failover dedup suppresses.
        if spec.stream {
            let batch = session.drain_emitted();
            let start = session.emission_cursor().count as usize - batch.len();
            if let Err(cause) = inner.record_emissions(job, attempt, start, &batch) {
                return inner.record_attempt_failure(job, attempt, cause);
            }
        }
        match session.checkpoint() {
            Ok(cp) => {
                let mut upto = prefix.clone();
                upto.extend_from_slice(session.matches());
                inner.store_resume(job, attempt, cp, upto);
            }
            Err(e) => return inner.record_attempt_failure(job, attempt, FailureCause::Engine(e)),
        }
    }
    let stream_cursor = spec.stream.then(|| session.emission_cursor());
    match session.finish() {
        Ok(out) => {
            let mut all = prefix;
            all.extend_from_slice(&out.matches);
            // A streamed request completes only if the delivered stream
            // equals the final match list and the cursors agree — a gap
            // or duplicate that survived this far is a typed failure,
            // never a silently wrong answer.
            if let Some(cursor) = stream_cursor {
                if let Err(cause) = inner.verify_final_emissions(job, attempt, &all, cursor) {
                    return inner.record_attempt_failure(job, attempt, cause);
                }
            }
            inner.complete(job, attempt, all, PathTaken::Session);
        }
        Err(e) => inner.record_attempt_failure(job, attempt, FailureCause::Engine(e)),
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

fn spawn_worker(inner: &Arc<Inner>, index: usize) -> WorkerHandle {
    let (tx, rx) = channel::<Assignment>();
    let slot = Arc::new(WorkerSlot {
        alive: AtomicBool::new(true),
        abandoned: AtomicBool::new(false),
        busy: Mutex::new(None),
        heartbeat_ms: AtomicU64::new(inner.now_ms()),
    });
    inner.workers_spawned.fetch_add(1, Ordering::SeqCst);
    inner.obs.workers_spawned.incr();
    let inner2 = inner.clone();
    let slot2 = slot.clone();
    let join = std::thread::Builder::new()
        .name(format!("st-serve-worker-{index}"))
        .spawn(move || worker_main(inner2, slot2, rx))
        .expect("spawn worker thread");
    WorkerHandle {
        slot,
        tx: Some(tx),
        join: Some(join),
    }
}

/// Detects dead and stalled workers; recovers their in-flight requests
/// and replaces them.
fn reap_and_replace(inner: &Arc<Inner>, workers: &mut [WorkerHandle], now_ms: u64) {
    let stall_ms = inner.cfg.stall_timeout.as_millis() as u64;
    for (i, worker) in workers.iter_mut().enumerate() {
        if !worker.slot.alive.load(Ordering::SeqCst) {
            // Dead (panic).  The panic path normally reported already;
            // this sweep is the backstop for a worker that died without
            // reporting.
            let victim = lock(&worker.slot.busy).take();
            if let Some(a) = victim {
                for (job, attempt) in a.group {
                    inner.record_attempt_failure(
                        job,
                        attempt,
                        FailureCause::WorkerPanic {
                            detail: "worker thread died".to_owned(),
                        },
                    );
                }
            }
            if let Some(h) = worker.join.take() {
                let _ = h.join(); // reap; Err(panic payload) is expected
            }
            *worker = spawn_worker(inner, i);
            continue;
        }
        // Stalled?  Only a busy worker owes heartbeats.
        let victim = lock(&worker.slot.busy).clone();
        if let Some(a) = victim {
            let hb = worker.slot.heartbeat_ms.load(Ordering::SeqCst);
            let silent = now_ms.saturating_sub(hb);
            if silent > stall_ms {
                worker.slot.abandoned.store(true, Ordering::SeqCst);
                *lock(&worker.slot.busy) = None;
                for &(job, attempt) in &a.group {
                    inner.record_attempt_failure(
                        job,
                        attempt,
                        FailureCause::WorkerStall { stalled_ms: silent },
                    );
                }
                // Replace the slot; dropping the old sender lets the
                // zombie exit once it wakes, and dropping the handle
                // detaches it (joining a sleeping zombie would block
                // shutdown).
                let replacement = spawn_worker(inner, i);
                let _zombie = std::mem::replace(worker, replacement);
            }
        }
    }
}

/// Hands one pending entry to an idle worker.  A groupable multi-query
/// lead pulls every other queued multi-query request with the same
/// document fingerprint into its assignment, so one worker serves the
/// whole batch with one shared pass.  Returns `false` if the work must
/// go back to the queue (no healthy idle worker took it).
fn try_assign(inner: &Arc<Inner>, workers: &[WorkerHandle], p: &Pending, now_ms: u64) -> bool {
    // Deadline-aware admission: a queued request whose deadline already
    // passed is dropped here — typed error, no worker dispatch.
    if inner.expire_if_due(p.id, now_ms) {
        return true;
    }
    let mut group: Vec<(u64, u32)> = Vec::new();
    {
        let mut jobs = lock(&inner.jobs);
        let group_key = match jobs.get_mut(&p.id) {
            Some(st) if matches!(st.status, Status::Queued) => {
                st.status = Status::Running;
                group.push((p.id, st.attempt));
                match &st.work {
                    Work::Multi(w) if w.limits.is_none() => Some(w.fp),
                    _ => None,
                }
            }
            // Vanished or already terminal: the entry is stale; drop it.
            _ => return true,
        };
        if let Some(fp) = group_key {
            // Claim the rest of the batch.  Members stay Running while
            // their own queue entries surface later as stale no-ops;
            // deterministic ascending-id order keeps result splitting
            // independent of queue arrival order.
            let mut peers: Vec<u64> = jobs
                .iter()
                .filter(|(id, st)| {
                    **id != p.id
                        && matches!(st.status, Status::Queued)
                        // Deadline-aware grouping: never adopt a member
                        // whose deadline is projected to expire before
                        // the shared pass finishes — it would ride along
                        // only to receive an answer nobody is waiting
                        // for.  The projection uses the measured EWMA
                        // throughput of completed shared passes (the
                        // configured hint until one completes).
                        && st.deadline_ms.is_none_or(|d| {
                            let projected_ms =
                                st.work.doc_len() as u64 / inner.group_rate() + 1;
                            now_ms + projected_ms <= d
                        })
                        && matches!(&st.work,
                            Work::Multi(w) if w.limits.is_none() && w.fp == fp)
                })
                .map(|(id, _)| *id)
                .collect();
            peers.sort_unstable();
            for id in peers {
                if let Some(st) = jobs.get_mut(&id) {
                    st.status = Status::Running;
                    group.push((id, st.attempt));
                }
            }
        }
    }
    for w in workers {
        let healthy = w.slot.alive.load(Ordering::SeqCst)
            && !w.slot.abandoned.load(Ordering::SeqCst)
            && w.tx.is_some();
        if !healthy {
            continue;
        }
        let mut busy = lock(&w.slot.busy);
        if busy.is_some() {
            continue;
        }
        *busy = Some(Assignment {
            group: group.clone(),
        });
        drop(busy);
        w.slot.heartbeat_ms.store(now_ms, Ordering::SeqCst);
        let sent =
            w.tx.as_ref()
                .expect("healthy worker has a sender")
                .send(Assignment {
                    group: group.clone(),
                });
        if sent.is_ok() {
            return true;
        }
        // The worker died between the liveness check and the send; the
        // reaper will replace it.  Roll back and keep looking.
        *lock(&w.slot.busy) = None;
    }
    // No healthy idle worker: the whole claimed group goes back to the
    // queue (non-lead members' queue entries are still there).
    let mut jobs = lock(&inner.jobs);
    for &(id, attempt) in &group {
        if let Some(st) = jobs.get_mut(&id) {
            if st.attempt == attempt && matches!(st.status, Status::Running) {
                st.status = Status::Queued;
            }
        }
    }
    false
}

fn dispatcher_main(inner: Arc<Inner>) {
    let mut workers: Vec<WorkerHandle> = (0..inner.cfg.workers.max(1))
        .map(|i| spawn_worker(&inner, i))
        .collect();
    let poll = (inner.cfg.stall_timeout / 4)
        .min(Duration::from_millis(10))
        .max(Duration::from_millis(1));
    loop {
        let now_ms = inner.now_ms();
        reap_and_replace(&inner, &mut workers, now_ms);

        // Pull due entries (retries wait out their backoff).
        let mut due: Vec<Pending> = Vec::new();
        let mut next_due_ms: Option<u64> = None;
        {
            let mut q = lock(&inner.queue);
            let mut keep = VecDeque::with_capacity(q.q.len());
            while let Some(p) = q.q.pop_front() {
                if p.not_before_ms <= now_ms {
                    due.push(p);
                } else {
                    next_due_ms =
                        Some(next_due_ms.map_or(p.not_before_ms, |m| m.min(p.not_before_ms)));
                    keep.push_back(p);
                }
            }
            q.q = keep;
            inner.obs.queue_depth.set(q.q.len() as i64);
        }
        let mut leftovers: Vec<Pending> = Vec::new();
        for p in due {
            if !try_assign(&inner, &workers, &p, now_ms) {
                leftovers.push(p);
            }
        }
        if !leftovers.is_empty() {
            let mut q = lock(&inner.queue);
            for p in leftovers.into_iter().rev() {
                q.q.push_front(p);
            }
            inner.obs.queue_depth.set(q.q.len() as i64);
            drop(q);
        }

        // Graceful drain: exit only when no request is still open.
        let open = inner.submitted.load(Ordering::SeqCst)
            - inner.completed.load(Ordering::SeqCst)
            - inner.failed.load(Ordering::SeqCst);
        let shutting_down = lock(&inner.queue).shutdown;
        if shutting_down && open == 0 {
            break;
        }

        let mut timeout = poll;
        if let Some(nd) = next_due_ms {
            timeout = timeout.min(
                Duration::from_millis(nd.saturating_sub(now_ms)).max(Duration::from_millis(1)),
            );
        }
        let guard = lock(&inner.queue);
        let _ = inner
            .queue_cv
            .wait_timeout(guard, timeout)
            .map(|(g, _)| drop(g));
    }
    // Drop senders so idle workers exit, then join the live ones.
    for w in &mut workers {
        w.tx = None;
    }
    for mut w in workers {
        if let Some(h) = w.join.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Public handle
// ---------------------------------------------------------------------------

/// A running supervised serving runtime.  See the module docs for the
/// architecture; construct with [`ServeRuntime::start`], submit with
/// [`ServeRuntime::submit`], collect with [`ServeRuntime::wait`], and
/// drain with [`ServeRuntime::shutdown`].
pub struct ServeRuntime {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServeRuntime {
    /// Starts the pool and the supervisor.
    pub fn start(cfg: ServeConfig) -> ServeRuntime {
        if cfg.chaos.is_some() {
            silence_chaos_panics();
        }
        let clock = cfg.budget.session_limits.clock.unwrap_or(monotonic_clock);
        let obs = ServeObs::attach(&cfg.obs);
        let inner = Arc::new(Inner {
            cfg,
            clock,
            epoch: clock(),
            obs,
            queue: Mutex::new(QueueState {
                q: VecDeque::new(),
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            jobs_cv: Condvar::new(),
            in_flight_bytes: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            workers_spawned: AtomicU64::new(0),
            multi_groups: AtomicU64::new(0),
            multi_group_members: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            emission_suppressed: AtomicU64::new(0),
            group_rate_bpms: AtomicU64::new(0),
        });
        let inner2 = inner.clone();
        let dispatcher = std::thread::Builder::new()
            .name("st-serve-supervisor".to_owned())
            .spawn(move || dispatcher_main(inner2))
            .expect("spawn supervisor thread");
        ServeRuntime {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    fn admit(&self, work: Work, block: bool) -> Result<JobId, ServeError> {
        let doc_len = work.doc_len();
        loop {
            {
                // Lock order everywhere: jobs before queue.
                let mut jobs = lock(&self.inner.jobs);
                let mut q = lock(&self.inner.queue);
                if q.shutdown {
                    return Err(ServeError::ShuttingDown);
                }
                if q.q.len() < self.inner.cfg.queue_capacity {
                    if let Some(mb) = self.inner.cfg.budget.max_in_flight_bytes {
                        let cur = self.inner.in_flight_bytes.load(Ordering::SeqCst);
                        if cur + doc_len > mb {
                            self.inner.rejected.fetch_add(1, Ordering::SeqCst);
                            self.inner.obs.rejected.incr();
                            self.inner.obs.trace(TraceEvent::BudgetReject {
                                requested: doc_len as u64,
                                held: cur as u64,
                                budget: mb as u64,
                            });
                            return Err(ServeError::Rejected {
                                reason: format!(
                                    "in-flight byte budget: {cur} held + {doc_len} requested > {mb}"
                                ),
                            });
                        }
                    }
                    let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
                    let submitted_ms = self.inner.now_ms();
                    jobs.insert(
                        id,
                        JobState {
                            attempt: 1,
                            resume: None,
                            resumes: 0,
                            failures: Vec::new(),
                            status: Status::Queued,
                            path: PathTaken::Session,
                            degraded: false,
                            submitted_ms,
                            deadline_ms: work
                                .deadline()
                                .map(|d| submitted_ms.saturating_add(d.as_millis() as u64)),
                            multi_results: None,
                            group_size: 0,
                            ledger: Vec::new(),
                            suppressed: 0,
                            work: work.clone(),
                        },
                    );
                    let held = self
                        .inner
                        .in_flight_bytes
                        .fetch_add(doc_len, Ordering::SeqCst);
                    q.q.push_back(Pending {
                        id,
                        not_before_ms: 0,
                    });
                    self.inner.submitted.fetch_add(1, Ordering::SeqCst);
                    self.inner.obs.submitted.incr();
                    self.inner.obs.in_flight_bytes.set((held + doc_len) as i64);
                    self.inner.obs.queue_depth.set(q.q.len() as i64);
                    self.inner.obs.trace(TraceEvent::JobAdmitted {
                        job: id,
                        bytes: doc_len as u64,
                    });
                    drop(q);
                    drop(jobs);
                    self.inner.queue_cv.notify_all();
                    return Ok(JobId(id));
                }
                if !block {
                    self.inner.shed.fetch_add(1, Ordering::SeqCst);
                    self.inner.obs.shed.incr();
                    self.inner.obs.trace(TraceEvent::QueueShed {
                        queue_len: q.q.len() as u64,
                        capacity: self.inner.cfg.queue_capacity as u64,
                    });
                    return Err(ServeError::Overloaded {
                        queue_len: q.q.len(),
                        capacity: self.inner.cfg.queue_capacity,
                    });
                }
            }
            // Blocking submit: wait for space (jobs lock released).
            let q = lock(&self.inner.queue);
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let _ = self
                .inner
                .queue_cv
                .wait_timeout(q, Duration::from_millis(10))
                .map(|(g, _)| drop(g));
        }
    }

    /// Submits a request.  Admission control applies: a full queue sheds
    /// with [`ServeError::Overloaded`], a blown service byte budget
    /// refuses with [`ServeError::Rejected`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`], [`ServeError::Rejected`], or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServeError> {
        self.admit(Work::Single(Arc::new(spec)), false)
    }

    /// Like [`Self::submit`] but waits for queue space instead of
    /// shedding.  Byte-budget rejection still applies.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] or [`ServeError::ShuttingDown`].
    pub fn submit_blocking(&self, spec: JobSpec) -> Result<JobId, ServeError> {
        self.admit(Work::Single(Arc::new(spec)), true)
    }

    /// Submits a multi-query request.  Every pattern is validated at
    /// admission; requests over the same document (same bytes, alphabet,
    /// and product budget) that carry no custom limits are grouped by the
    /// scheduler and served by one shared [`st_core::QuerySet`] pass.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when a pattern fails to compile or the
    /// byte budget is blown, [`ServeError::Overloaded`], or
    /// [`ServeError::ShuttingDown`].
    pub fn submit_multi(&self, spec: MultiJobSpec) -> Result<JobId, ServeError> {
        self.admit_multi(spec, false)
    }

    /// Like [`Self::submit_multi`] but waits for queue space instead of
    /// shedding.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] or [`ServeError::ShuttingDown`].
    pub fn submit_multi_blocking(&self, spec: MultiJobSpec) -> Result<JobId, ServeError> {
        self.admit_multi(spec, true)
    }

    fn admit_multi(&self, spec: MultiJobSpec, block: bool) -> Result<JobId, ServeError> {
        for (i, p) in spec.patterns.iter().enumerate() {
            if let Err(e) = compile_regex(p, &spec.alphabet) {
                self.inner.rejected.fetch_add(1, Ordering::SeqCst);
                self.inner.obs.rejected.incr();
                return Err(ServeError::Rejected {
                    reason: format!("pattern {i} ({p:?}) failed to compile: {e}"),
                });
            }
        }
        let budget = spec.product_budget.unwrap_or(self.inner.cfg.product_budget);
        let fp = group_fingerprint(&spec.doc, &spec.alphabet, budget);
        self.admit(
            Work::Multi(Arc::new(MultiWork {
                patterns: spec.patterns,
                alphabet: spec.alphabet,
                doc: spec.doc,
                limits: spec.limits,
                deadline: spec.deadline,
                budget,
                fp,
            })),
            block,
        )
    }

    /// Blocks until the request finishes (completes, or fails its typed
    /// terminal error) and returns its report.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an id this runtime never issued.
    pub fn wait(&self, id: JobId) -> Result<JobReport, ServeError> {
        let mut jobs = lock(&self.inner.jobs);
        loop {
            let Some(st) = jobs.get(&id.0) else {
                return Err(ServeError::UnknownJob { id: id.0 });
            };
            if let Some(report) = self.inner.report_of(id.0, st) {
                return Ok(report);
            }
            jobs = self
                .inner
                .jobs_cv
                .wait_timeout(jobs, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// The report of a finished request, or `None` while it is still
    /// queued or running.
    pub fn try_report(&self, id: JobId) -> Option<JobReport> {
        let jobs = lock(&self.inner.jobs);
        jobs.get(&id.0)
            .and_then(|st| self.inner.report_of(id.0, st))
    }

    /// The matches delivered so far to a streamed request, from stream
    /// position `start` onward.  Usable while the request is still
    /// running — this is how a caller consumes the stream incrementally
    /// (poll, extend by what is new, repeat).  The returned slice is a
    /// prefix-stable snapshot: position `i` never changes once returned,
    /// across retries and failovers.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an id this runtime never issued.
    pub fn emitted_prefix(
        &self,
        id: JobId,
        start: usize,
    ) -> Result<Vec<StreamedMatch>, ServeError> {
        let jobs = lock(&self.inner.jobs);
        let Some(st) = jobs.get(&id.0) else {
            return Err(ServeError::UnknownJob { id: id.0 });
        };
        Ok(st.ledger.get(start..).unwrap_or_default().to_vec())
    }

    /// Blocks until the request finishes and returns its report with
    /// per-query match attribution.  For a request submitted via
    /// [`Self::submit`] the single result set is returned as one entry.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an id this runtime never issued.
    pub fn wait_multi(&self, id: JobId) -> Result<MultiJobReport, ServeError> {
        let mut jobs = lock(&self.inner.jobs);
        loop {
            let Some(st) = jobs.get(&id.0) else {
                return Err(ServeError::UnknownJob { id: id.0 });
            };
            if let Some(report) = self.inner.multi_report_of(id.0, st) {
                return Ok(report);
            }
            jobs = self
                .inner
                .jobs_cv
                .wait_timeout(jobs, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// The per-query report of a finished request, or `None` while it is
    /// still queued or running.
    pub fn try_multi_report(&self, id: JobId) -> Option<MultiJobReport> {
        let jobs = lock(&self.inner.jobs);
        jobs.get(&id.0)
            .and_then(|st| self.inner.multi_report_of(id.0, st))
    }

    /// A snapshot of the runtime counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Closes admission without blocking: subsequent submissions get
    /// [`ServeError::ShuttingDown`], while already-admitted requests keep
    /// running and can still be `wait`ed on.  [`Self::shutdown`] completes
    /// the drain.
    pub fn begin_drain(&self) {
        self.begin_shutdown();
    }

    /// Stops accepting work, drains every in-flight request (completing
    /// or failing each one — none are lost), stops the pool, and returns
    /// the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.begin_shutdown();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        self.inner.stats()
    }

    fn begin_shutdown(&self) {
        lock(&self.inner.queue).shutdown = true;
        self.inner.queue_cv.notify_all();
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

/// Installs (once, chained) a panic hook that silences the chaos
/// harness's own injected panics — they are the test, not noise — while
/// passing every other panic through to the previous hook.
pub fn silence_chaos_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let is_chaos = payload
                .downcast_ref::<String>()
                .map(|s| s.starts_with("chaos:"))
                .or_else(|| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with("chaos:"))
                })
                .unwrap_or(false);
            if !is_chaos {
                prev(info);
            }
        }));
    });
}
