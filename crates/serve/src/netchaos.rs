//! Deterministic *network* fault injection (feature `chaos`).
//!
//! The worker-pool chaos harness ([`crate::chaos`]) attacks the serving
//! runtime from the inside — panics, stalls, corrupt segments.  This
//! module attacks it from the outside, playing the part of every client
//! a network service eventually meets: ones that disconnect mid-stream,
//! tear frames at arbitrary byte boundaries, go silent past the read
//! deadline, and replay whole uploads.
//!
//! Like the pool harness, faults are a pure function of `(seed,
//! request, attempt, segment)` — never of wall-clock time or scheduling
//! — so a network soak is exactly reproducible from its seed and its
//! *outcomes* are identical whatever the server's connection capacity.
//! Retries re-roll under a fresh `attempt`, so an injected fault does
//! not recur deterministically on the resend — the transient-fault
//! shape the connection robustness machinery exists for.

/// The client-side fault (if any) injected at one `(request, attempt,
/// segment)` boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// No fault; send the segment normally.
    None,
    /// Drop the connection cleanly before this segment (the server
    /// sees a truncated request and must free its budget and session).
    Disconnect,
    /// Send a *torn* frame — the header and a prefix of the payload —
    /// then drop the connection (the server must report a typed
    /// `TRUNCATED_FRAME`, never hang or misparse).
    Torn,
    /// Go silent past the server's read deadline before this segment,
    /// then drop (the server must kill the request with a typed
    /// `READ_TIMEOUT` and free its resources).
    Stall,
}

/// Seeded network fault rates.  Rates are per-mille per segment
/// boundary and are drawn disjointly: at most one fault fires per
/// boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetChaosConfig {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Per-mille chance a boundary drops the connection.
    pub disconnect_per_mille: u16,
    /// Per-mille chance a boundary sends a torn frame then drops.
    pub torn_per_mille: u16,
    /// Per-mille chance a boundary stalls past the read deadline.
    pub stall_per_mille: u16,
    /// How long an injected stall stays silent.  Must comfortably
    /// exceed the server's read deadline, or the "stall" is just slow
    /// and the timeout outcome stops being deterministic.
    pub stall_ms: u64,
    /// Per-mille chance a *completed* request is immediately re-sent in
    /// full on a fresh connection (a duplicate upload; the reply must
    /// be bitwise identical).
    pub resend_per_mille: u16,
}

impl NetChaosConfig {
    /// A moderate network-chaos profile for the given seed.
    pub fn with_seed(seed: u64) -> NetChaosConfig {
        NetChaosConfig {
            seed,
            disconnect_per_mille: 15,
            torn_per_mille: 15,
            stall_per_mille: 10,
            stall_ms: 200,
            resend_per_mille: 300,
        }
    }

    /// The fault injected at this `(request, attempt, segment)`
    /// boundary.  Deterministic: same inputs, same fault, regardless of
    /// connection capacity or scheduling.
    pub fn roll(&self, request: u64, attempt: u32, segment: u64) -> NetFault {
        let h = mix(self.seed
            ^ request.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ segment.wrapping_mul(0x1656_67B1_9E37_79F9)
            ^ 0x5EED_0F0F_0F0F_5EED);
        let r = (h % 1000) as u16;
        if r < self.disconnect_per_mille {
            NetFault::Disconnect
        } else if r < self.disconnect_per_mille + self.torn_per_mille {
            NetFault::Torn
        } else if r < self.disconnect_per_mille + self.torn_per_mille + self.stall_per_mille {
            NetFault::Stall
        } else {
            NetFault::None
        }
    }

    /// Whether this request, once completed, is re-sent in full as a
    /// duplicate upload.
    pub fn roll_resend(&self, request: u64) -> bool {
        let h =
            mix(self.seed ^ request.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ 0x00D0_71CA_7E00_0000);
        ((h % 1000) as u16) < self.resend_per_mille
    }
}

/// SplitMix64 finalizer (same permutation as [`crate::chaos`]).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_attempt_sensitive() {
        let c = NetChaosConfig::with_seed(11);
        for req in 0..50u64 {
            for seg in 0..20u64 {
                assert_eq!(c.roll(req, 1, seg), c.roll(req, 1, seg));
            }
        }
        let mut cleared = 0;
        for req in 0..200u64 {
            for seg in 0..20u64 {
                if c.roll(req, 1, seg) != NetFault::None && c.roll(req, 2, seg) == NetFault::None {
                    cleared += 1;
                }
            }
        }
        assert!(cleared > 0, "retries never clear injected faults");
    }

    #[test]
    fn fault_streams_differ_from_the_pool_harness() {
        // Same seed, same coordinates — but the net stream is salted, so
        // the two harnesses do not inject in lockstep.
        let net = NetChaosConfig::with_seed(7);
        let pool = crate::chaos::ChaosConfig::with_seed(7);
        let mut differs = false;
        for req in 0..100u64 {
            for seg in 0..20u64 {
                let n = net.roll(req, 1, seg) != NetFault::None;
                let p = pool.roll(req, 1, seg) != crate::chaos::Fault::None;
                if n != p {
                    differs = true;
                }
            }
        }
        assert!(differs);
    }
}
