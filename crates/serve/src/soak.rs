//! The deterministic chaos-soak harness (feature `chaos`).
//!
//! One soak run: generate a seeded stream of conformance cases, compute
//! each case's *clean* reference (an uninterrupted
//! [`FusedQuery::select_bytes`] run, plus the DOM oracle on well-formed
//! documents), then push the same requests through a
//! [`crate::ServeRuntime`] with seeded fault injection armed — and hold
//! the runtime to the recovery contract:
//!
//! * every **completed** request's match set equals the clean run's (and
//!   the DOM oracle's, when the document is well-formed), no matter how
//!   many panics/stalls/corruptions its attempts absorbed;
//! * every **failed** request carries a typed terminal error whose last
//!   cause is either the document's own (deterministic) engine error or
//!   an injected chaos fault that exhausted the retry budget;
//! * nothing is lost: every submitted request ends in exactly one of
//!   those two states.
//!
//! Everything — case generation, fault rolls, retry sequences — is a
//! pure function of the seed, so [`SoakReport::outcomes`] must be
//! bitwise-identical across pool sizes; the determinism suite runs the
//! same seed on 1/2/8-worker pools and asserts exactly that.

use std::sync::Arc;

use st_automata::{compile_regex, Alphabet, Dfa, Tag};
use st_baseline::dom;
use st_conform::gen::{case_rng, gen_case, Case, GenConfig};
use st_core::engine::FusedQuery;
use st_core::planner::CompiledQuery;
use st_trees::{encode::markup_decode, xml::Scanner};

use st_obs::ObsHandle;

use st_core::emit::StreamedMatch;

use crate::chaos::ChaosConfig;
use crate::config::ServeConfig;
use crate::error::{FailureCause, ServeError};
use crate::runtime::{JobSpec, ServeRuntime, ServeStats};

/// Parameters of one soak run.  Everything that influences behaviour is
/// here, so `(SoakConfig, seed)` fully reproduces a run.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Master seed: drives case generation and fault injection.
    pub seed: u64,
    /// Requests to generate and serve.
    pub requests: u64,
    /// Worker pool size.
    pub workers: usize,
    /// Checkpoint cadence in bytes (small, so typical generated
    /// documents span many segments and faults land mid-document).
    pub checkpoint_every: usize,
    /// Retry budget per request.
    pub max_retries: u32,
    /// Per-mille chance a segment boundary panics the worker.
    pub panic_per_mille: u16,
    /// Per-mille chance a segment stalls the worker past its deadline.
    pub stall_per_mille: u16,
    /// Per-mille chance a segment fails its integrity check.
    pub corrupt_per_mille: u16,
    /// Injected stall duration.  Keep this comfortably above
    /// `stall_timeout_ms` so the supervisor always wins the race and
    /// stall outcomes stay deterministic.
    pub stall_ms: u64,
    /// Supervisor stall deadline.
    pub stall_timeout_ms: u64,
    /// Observability sink the induced runtime records into.  Excluded
    /// from equality: it observes the run, it does not shape it.
    pub obs: ObsHandle,
}

/// Two soak profiles are equal when they would *behave* identically:
/// every field except the observability handle.
impl PartialEq for SoakConfig {
    fn eq(&self, other: &SoakConfig) -> bool {
        self.seed == other.seed
            && self.requests == other.requests
            && self.workers == other.workers
            && self.checkpoint_every == other.checkpoint_every
            && self.max_retries == other.max_retries
            && self.panic_per_mille == other.panic_per_mille
            && self.stall_per_mille == other.stall_per_mille
            && self.corrupt_per_mille == other.corrupt_per_mille
            && self.stall_ms == other.stall_ms
            && self.stall_timeout_ms == other.stall_timeout_ms
    }
}

impl Eq for SoakConfig {}

impl SoakConfig {
    /// A moderate soak profile for the given seed.
    pub fn new(seed: u64) -> SoakConfig {
        SoakConfig {
            seed,
            requests: 48,
            workers: 4,
            checkpoint_every: 16,
            max_retries: 3,
            panic_per_mille: 8,
            stall_per_mille: 4,
            corrupt_per_mille: 12,
            stall_ms: 250,
            stall_timeout_ms: 50,
            obs: ObsHandle::disabled(),
        }
    }

    /// Sets the request count.
    pub fn with_requests(mut self, requests: u64) -> SoakConfig {
        self.requests = requests;
        self
    }

    /// Sets the worker pool size.
    pub fn with_workers(mut self, workers: usize) -> SoakConfig {
        self.workers = workers.max(1);
        self
    }

    /// Sets the checkpoint cadence in bytes.
    pub fn with_checkpoint_every(mut self, bytes: usize) -> SoakConfig {
        self.checkpoint_every = bytes.max(1);
        self
    }

    /// Sets the retry budget per request.
    pub fn with_max_retries(mut self, retries: u32) -> SoakConfig {
        self.max_retries = retries;
        self
    }

    /// Sets the per-mille fault rates (panic, stall, corrupt).
    pub fn with_fault_rates(mut self, panic: u16, stall: u16, corrupt: u16) -> SoakConfig {
        self.panic_per_mille = panic;
        self.stall_per_mille = stall;
        self.corrupt_per_mille = corrupt;
        self
    }

    /// Sets the injected stall duration and the supervisor deadline.
    /// Keep the duration comfortably above the deadline so the
    /// supervisor always wins the race.
    pub fn with_stall_profile(mut self, stall_ms: u64, stall_timeout_ms: u64) -> SoakConfig {
        self.stall_ms = stall_ms;
        self.stall_timeout_ms = stall_timeout_ms;
        self
    }

    /// Attaches an observability handle to the induced runtime.
    pub fn with_obs(mut self, obs: ObsHandle) -> SoakConfig {
        self.obs = obs;
        self
    }

    /// The runtime configuration this soak profile induces.  The queue
    /// is sized to hold every request: load shedding is timing-dependent
    /// and would break cross-pool determinism, so soaks never shed.
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig::default()
            .with_workers(self.workers)
            .with_queue_capacity(self.requests as usize + 1)
            .with_checkpoint_every(self.checkpoint_every)
            .with_max_retries(self.max_retries)
            .with_stall_timeout(std::time::Duration::from_millis(self.stall_timeout_ms))
            .with_chaos(ChaosConfig {
                seed: self.seed,
                panic_per_mille: self.panic_per_mille,
                stall_per_mille: self.stall_per_mille,
                corrupt_per_mille: self.corrupt_per_mille,
                stall_ms: self.stall_ms,
            })
            .with_obs(self.obs.clone())
    }
}

/// How one request ended, in a form comparable across runs and pool
/// sizes: match sets verbatim, errors by stable class name (offsets and
/// stall durations vary with cadence internals; classes must not).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Completed with these matches (document-order node ids).
    Matches(Vec<usize>),
    /// Ended in a typed terminal error of this class
    /// (see [`ServeError::class`]).
    Failed(String),
    /// Not submitted: the generated pattern has no byte-level engine
    /// (composite table over budget).
    Skipped,
}

/// A violation of the recovery contract, with everything needed to
/// reproduce it.
#[derive(Clone, Debug)]
pub struct SoakDivergence {
    /// Index of the request in the generation stream (`case_rng(seed,
    /// request)` regenerates its case).
    pub request: u64,
    /// The case's query pattern.
    pub pattern: String,
    /// The case's alphabet characters.
    pub alphabet: String,
    /// The case's document bytes.
    pub doc: Vec<u8>,
    /// The runtime [`crate::JobId`] the request ran under (`None` for
    /// skipped requests).  With an observability handle attached
    /// ([`SoakConfig::with_obs`]), `ObsHandle::trace_for_job(job)` is
    /// the post-mortem: the supervisor-decision trace of exactly this
    /// request.
    pub job: Option<u64>,
    /// What disagreed with what.
    pub detail: String,
}

impl SoakDivergence {
    /// A self-contained text reproducer (hex document, regeneration
    /// coordinates) suitable for a CI artifact.
    pub fn reproducer(&self, seed: u64) -> String {
        let hex: String = self.doc.iter().map(|b| format!("{b:02x}")).collect();
        format!(
            "seed = {}\nrequest = {}\npattern = {}\nalphabet = {}\ndoc_hex = {}\ndetail = {}\n",
            seed, self.request, self.pattern, self.alphabet, hex, self.detail
        )
    }
}

/// The result of one soak run.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Per-request outcomes, in submission order.  The cross-pool
    /// determinism invariant is over exactly this vector.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-request delivered emission streams, in submission order
    /// (empty for failed or skipped requests).  Every request runs
    /// streamed, so this is the concatenation of the emitted prefixes of
    /// all its attempts after ledger dedup — held to equal the final
    /// match list exactly (no retraction, duplicate, or reordering) and,
    /// like [`SoakReport::outcomes`], bitwise identical across pool
    /// sizes.
    pub streams: Vec<Vec<StreamedMatch>>,
    /// Requests that completed and matched the clean reference.
    pub completed: usize,
    /// Requests that failed only because injected chaos exhausted the
    /// retry budget (their documents were clean).
    pub chaos_casualties: usize,
    /// Requests whose documents the clean run also rejects; their typed
    /// failures are expected, not chaos damage.
    pub clean_rejections: usize,
    /// Requests never submitted (no byte-level engine for the pattern).
    pub skipped: usize,
    /// Recovery-contract violations.  Empty on a healthy runtime.
    pub divergences: Vec<SoakDivergence>,
    /// Final runtime counters.
    pub stats: ServeStats,
}

impl SoakReport {
    /// Whether the run upheld the recovery contract.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Reproducers for every divergence, concatenated (empty when
    /// [`SoakReport::ok`]).
    pub fn reproducer(&self, seed: u64) -> String {
        self.divergences
            .iter()
            .map(|d| d.reproducer(seed))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// One generated request with its precomputed references.
struct Prepared {
    case: Case,
    fused: Option<Arc<FusedQuery>>,
    /// The uninterrupted clean run: matches, or the engine's rejection.
    clean: Result<Vec<usize>, String>,
    /// DOM-oracle matches, when the document is well-formed.
    oracle: Option<Vec<usize>>,
}

fn dom_oracle(doc: &[u8], g: &Alphabet, dfa: &Dfa) -> Option<Vec<usize>> {
    let tags: Vec<Tag> = Scanner::new(doc, g).collect::<Result<_, _>>().ok()?;
    markup_decode(&tags).ok()?;
    dom::evaluate(dfa, &tags).ok().map(|r| r.selected)
}

fn prepare(seed: u64, request: u64, gen_cfg: &GenConfig) -> Prepared {
    let (case, _) = gen_case(&mut case_rng(seed, request), gen_cfg);
    let g = Alphabet::of_chars(&case.alphabet);
    let fused = compile_regex(&case.pattern, &g).ok().and_then(|dfa| {
        let plan = CompiledQuery::compile(&dfa);
        plan.fused(&g).ok().map(|f| (f, dfa))
    });
    match fused {
        Some((f, dfa)) => {
            let clean = f.select_bytes(&case.doc).map_err(|e| format!("{e:?}"));
            let oracle = dom_oracle(&case.doc, &g, &dfa);
            Prepared {
                case,
                fused: Some(Arc::new(f)),
                clean,
                oracle,
            }
        }
        None => Prepared {
            case,
            fused: None,
            clean: Err("no byte-level engine".to_owned()),
            oracle: None,
        },
    }
}

/// Runs one chaos soak and checks the recovery contract.  See the
/// module docs for the invariants.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let gen_cfg = GenConfig::default();
    let prepared: Vec<Prepared> = (0..cfg.requests)
        .map(|i| prepare(cfg.seed, i, &gen_cfg))
        .collect();

    let serve = ServeRuntime::start(cfg.serve_config());
    // Every request runs streamed, so each completion also proves the
    // exactly-once emission contract under the injected faults.
    let ids: Vec<_> = prepared
        .iter()
        .map(|p| {
            p.fused.as_ref().map(|f| {
                serve
                    .submit(JobSpec::new(f.clone(), p.case.doc.clone()).with_stream())
                    .expect("soak queue is sized to hold every request")
            })
        })
        .collect();

    let mut outcomes = Vec::with_capacity(prepared.len());
    let mut streams = Vec::with_capacity(prepared.len());
    let mut divergences = Vec::new();
    let mut completed = 0usize;
    let mut chaos_casualties = 0usize;
    let mut clean_rejections = 0usize;
    let mut skipped = 0usize;

    for (i, (p, id)) in prepared.iter().zip(&ids).enumerate() {
        let diverge = |detail: String| SoakDivergence {
            request: i as u64,
            pattern: p.case.pattern.clone(),
            alphabet: p.case.alphabet.clone(),
            doc: p.case.doc.clone(),
            job: id.map(|j| j.0),
            detail,
        };
        let Some(id) = id else {
            skipped += 1;
            outcomes.push(RequestOutcome::Skipped);
            streams.push(Vec::new());
            continue;
        };
        let report = serve.wait(*id).expect("id was issued by this runtime");
        match &report.result {
            Ok(m) => {
                // The exactly-once emission contract, checked against
                // the *references*, not just the runtime's own ledger:
                // the delivered stream must equal the final match list
                // (hence the clean run, hence the DOM oracle) in both
                // content and order — no retraction, no duplicate, no
                // reordering — regardless of how many attempts died
                // mid-stream.
                let delivered: Vec<usize> = report.emitted.iter().map(|sm| sm.node).collect();
                if &delivered != m {
                    divergences.push(diverge(format!(
                        "delivered stream {delivered:?} != final matches {m:?} \
                         (attempts {}, suppressed {})",
                        report.attempts, report.suppressed
                    )));
                }
                if report
                    .emitted
                    .windows(2)
                    .any(|w| w[0].offset >= w[1].offset)
                {
                    divergences.push(diverge(format!(
                        "emitted offsets are not strictly increasing: {:?}",
                        report.emitted
                    )));
                }
                match &p.clean {
                    Ok(cm) if m == cm => {
                        completed += 1;
                        if let Some(oracle) = &p.oracle {
                            if oracle != m {
                                divergences.push(diverge(format!(
                                    "served matches {m:?} disagree with DOM oracle {oracle:?}"
                                )));
                            }
                        }
                    }
                    Ok(cm) => divergences.push(diverge(format!(
                        "served matches {m:?} != clean run {cm:?} \
                         (attempts {}, resumes {})",
                        report.attempts, report.resumes
                    ))),
                    Err(e) => divergences.push(diverge(format!(
                        "request completed with {m:?} where the clean run rejects: {e}"
                    ))),
                }
                outcomes.push(RequestOutcome::Matches(m.clone()));
                streams.push(report.emitted.clone());
            }
            Err(err @ ServeError::Failed { last, .. }) => {
                match &p.clean {
                    Err(_) => clean_rejections += 1,
                    Ok(_) => {
                        let chaos_fault = matches!(
                            last,
                            FailureCause::WorkerPanic { .. }
                                | FailureCause::WorkerStall { .. }
                                | FailureCause::SegmentCorrupted { .. }
                        );
                        if chaos_fault {
                            chaos_casualties += 1;
                        } else {
                            divergences.push(diverge(format!(
                                "clean document failed with non-chaos cause: {err}"
                            )));
                        }
                    }
                }
                outcomes.push(RequestOutcome::Failed(err.class()));
                streams.push(Vec::new());
            }
            Err(other) => {
                divergences.push(diverge(format!(
                    "unexpected submission-side error: {other}"
                )));
                outcomes.push(RequestOutcome::Failed(other.class()));
                streams.push(Vec::new());
            }
        }
    }

    let stats = serve.shutdown();
    SoakReport {
        outcomes,
        streams,
        completed,
        chaos_casualties,
        clean_rejections,
        skipped,
        divergences,
        stats,
    }
}
