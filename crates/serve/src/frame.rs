//! The wire protocol of the network front-end: a tiny length-prefixed
//! frame codec over any byte stream.
//!
//! A connection opens with the 4-byte preamble [`PREAMBLE`] (`"STN1"`),
//! then carries a sequence of frames, each `[kind: u8][len: u32 LE]
//! [payload: len bytes]`.  The client speaks [`FrameKind::Query`] /
//! [`FrameKind::MultiQuery`] to open a request, streams document bytes
//! with [`FrameKind::Chunk`], and closes the document with an empty
//! [`FrameKind::Finish`]; the server answers with exactly one
//! [`FrameKind::Matches`] / [`FrameKind::MultiMatches`] (success) or
//! [`FrameKind::Error`] (a stable numeric code from
//! [`crate::error::codes`] plus a human-readable message).
//!
//! The codec is deliberately paranoid — it is the outermost surface the
//! chaos harness attacks with torn frames, length-lying headers, and
//! garbage preambles:
//!
//! * frame lengths are validated against a maximum *before* any
//!   allocation, so a length-lying header cannot balloon memory;
//! * every partial read maps end-of-stream to a typed
//!   [`FrameError::Truncated`] (never a panic or a hang past the socket
//!   deadline);
//! * read deadlines surface as [`FrameError::Timeout`];
//! * payload decoders validate internal lengths exactly — trailing
//!   bytes, short counts, and non-UTF-8 text are all
//!   [`FrameError::BadPayload`].
//!
//! Every [`FrameError`] maps to a stable wire code
//! ([`FrameError::wire_code`]); the match is exhaustive so a new variant
//! without a code is a compile error.

use std::fmt;
use std::io::{self, Read, Write};

use st_core::emit::{EmissionCursor, StreamedMatch};

use crate::error::codes;

/// The 4-byte connection preamble: `"STN1"` (Streamed Trees Net v1).
pub const PREAMBLE: [u8; 4] = *b"STN1";

/// Default maximum frame payload length the server accepts (1 MiB).
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// Maximum response frame length a [`crate::net::NetClient`] accepts
/// (64 MiB — a `Matches` frame carries 8 bytes per selected node).
pub const RESPONSE_MAX_FRAME_LEN: usize = 64 << 20;

/// Frame type tags.  Client-to-server kinds live below `0x80`,
/// server-to-client kinds at `0x80` and above.  Append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Opens a single-query request: `[alpha_len: u16 LE][alphabet csv]
    /// [pattern]`.
    Query = 0x01,
    /// A run of document bytes (non-empty).
    Chunk = 0x02,
    /// Closes the document (empty payload); the server answers.
    Finish = 0x03,
    /// Opens a multi-query request: `[alpha_len: u16 LE][alphabet csv]
    /// [count: u16 LE]` then `count` of `[len: u16 LE][pattern]`.
    MultiQuery = 0x04,
    /// Opens a *streaming* single-query request (same payload as
    /// [`FrameKind::Query`]).  The server answers each `Chunk` with one
    /// [`FrameKind::MatchPart`] carrying the matches that crossed the
    /// certainty frontier during it (possibly zero), in lock step —
    /// request, reply, request, reply — so neither side ever blocks on a
    /// full socket buffer.  `Finish` is answered with a final
    /// cursor-carrying `Matches` (see [`encode_matches_with_cursor`]).
    StreamQuery = 0x05,
    /// Success reply to [`FrameKind::Query`]: `[count: u32 LE]` then
    /// `count` node ids as `u64 LE`.  In a streaming request the final
    /// `Matches` additionally carries the emission cursor (count +
    /// digest) after the ids.
    Matches = 0x81,
    /// Success reply to [`FrameKind::MultiQuery`]: `[members: u32 LE]`
    /// then per member `[count: u32 LE]` + ids as `u64 LE`.
    MultiMatches = 0x82,
    /// Failure reply: `[code: u16 LE][utf-8 message]`; codes are the
    /// stable registry in [`crate::error::codes`].
    Error = 0x83,
    /// Incremental streaming reply: `[start: u64 LE][count: u32 LE]`
    /// then `count` of `[node: u64 LE][offset: u64 LE]` — the matches at
    /// stream positions `start..start + count`, emitted at the earliest
    /// byte offset at which each is certain.
    MatchPart = 0x84,
}

impl FrameKind {
    /// Decodes a frame type byte.
    pub fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            0x01 => Some(FrameKind::Query),
            0x02 => Some(FrameKind::Chunk),
            0x03 => Some(FrameKind::Finish),
            0x04 => Some(FrameKind::MultiQuery),
            0x05 => Some(FrameKind::StreamQuery),
            0x81 => Some(FrameKind::Matches),
            0x82 => Some(FrameKind::MultiMatches),
            0x83 => Some(FrameKind::Error),
            0x84 => Some(FrameKind::MatchPart),
            _ => None,
        }
    }

    /// The wire byte of this kind.
    pub fn as_byte(self) -> u8 {
        self as u8
    }
}

/// Everything that can go wrong reading or decoding a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The connection did not open with [`PREAMBLE`].
    BadPreamble {
        /// The bytes actually received.
        got: [u8; 4],
    },
    /// An unknown frame type byte.
    BadFrameType {
        /// The offending byte.
        byte: u8,
    },
    /// A frame header declared a payload over the configured maximum.
    /// Detected before any allocation.
    TooLarge {
        /// The declared length.
        len: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The stream ended mid-frame (a torn frame, a length-lying header,
    /// or a mid-stream disconnect).
    Truncated {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// A read deadline expired.
    Timeout,
    /// A frame arrived intact but its payload structure is malformed
    /// (bad internal lengths, trailing bytes, or non-UTF-8 text).
    BadPayload {
        /// What exactly is malformed.
        detail: String,
    },
    /// Any other transport error (connection reset, broken pipe, ...).
    Io {
        /// The [`io::ErrorKind`] of the failure.
        kind: io::ErrorKind,
    },
}

impl FrameError {
    /// The stable numeric code this error travels under in an `Error`
    /// frame.  Exhaustive by design — see [`crate::error::codes`].
    pub fn wire_code(&self) -> u16 {
        match self {
            FrameError::BadPreamble { .. } => codes::BAD_PREAMBLE,
            FrameError::BadFrameType { .. } => codes::BAD_FRAME_TYPE,
            FrameError::TooLarge { .. } => codes::FRAME_TOO_LARGE,
            FrameError::Truncated { .. } => codes::TRUNCATED_FRAME,
            FrameError::Timeout => codes::READ_TIMEOUT,
            FrameError::BadPayload { .. } => codes::BAD_PAYLOAD,
            FrameError::Io { .. } => codes::TRUNCATED_FRAME,
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadPreamble { got } => {
                write!(f, "bad preamble {got:02x?} (expected {PREAMBLE:02x?})")
            }
            FrameError::BadFrameType { byte } => write!(f, "unknown frame type 0x{byte:02x}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} byte(s) exceeds the {max}-byte maximum")
            }
            FrameError::Truncated { context } => {
                write!(f, "stream ended mid-frame while reading {context}")
            }
            FrameError::Timeout => write!(f, "read deadline expired"),
            FrameError::BadPayload { detail } => write!(f, "malformed payload: {detail}"),
            FrameError::Io { kind } => write!(f, "transport error: {kind}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameKind,
    /// The raw payload.
    pub payload: Vec<u8>,
}

fn bad_payload(detail: impl Into<String>) -> FrameError {
    FrameError::BadPayload {
        detail: detail.into(),
    }
}

/// Reads exactly `buf.len()` bytes, mapping end-of-stream to
/// [`FrameError::Truncated`] and deadline expiry to
/// [`FrameError::Timeout`].  Hand-rolled (rather than
/// [`Read::read_exact`]) so a deadline that fires after partial progress
/// still reports `Timeout`, not a generic error.
fn read_full(r: &mut impl Read, buf: &mut [u8], context: &'static str) -> Result<(), FrameError> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => return Err(FrameError::Truncated { context }),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(FrameError::Timeout)
            }
            Err(e) => return Err(FrameError::Io { kind: e.kind() }),
        }
    }
    Ok(())
}

fn write_full(w: &mut impl Write, buf: &[u8]) -> Result<(), FrameError> {
    match w.write_all(buf) {
        Ok(()) => Ok(()),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(FrameError::Timeout)
        }
        Err(e) => Err(FrameError::Io { kind: e.kind() }),
    }
}

/// Reads and checks the connection preamble.
///
/// # Errors
///
/// [`FrameError::BadPreamble`] on a mismatch, [`FrameError::Truncated`]
/// if the stream ends inside it, [`FrameError::Timeout`] past the read
/// deadline.
pub fn read_preamble(r: &mut impl Read) -> Result<(), FrameError> {
    let mut got = [0u8; 4];
    read_full(r, &mut got, "preamble")?;
    if got != PREAMBLE {
        return Err(FrameError::BadPreamble { got });
    }
    Ok(())
}

/// Writes the connection preamble.
///
/// # Errors
///
/// [`FrameError::Timeout`] or [`FrameError::Io`] on transport failure.
pub fn write_preamble(w: &mut impl Write) -> Result<(), FrameError> {
    write_full(w, &PREAMBLE)
}

/// Reads one frame, enforcing `max_len` on the declared payload length
/// *before* allocating.
///
/// # Errors
///
/// Any [`FrameError`]; end-of-stream anywhere inside the frame is
/// [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Frame, FrameError> {
    let mut kind_byte = [0u8; 1];
    read_full(r, &mut kind_byte, "frame type")?;
    read_frame_after_kind(r, kind_byte[0], max_len)
}

/// Like [`read_frame`], but a clean end-of-stream *before any frame
/// byte* returns `Ok(None)` — how a connection loop tells a polite
/// disconnect between requests from a torn frame.
///
/// # Errors
///
/// As [`read_frame`], for everything past the first byte.
pub fn read_frame_or_eof(r: &mut impl Read, max_len: usize) -> Result<Option<Frame>, FrameError> {
    let mut kind_byte = [0u8; 1];
    let mut at = 0;
    while at < 1 {
        match r.read(&mut kind_byte[at..]) {
            Ok(0) => return Ok(None),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(FrameError::Timeout)
            }
            Err(e) => return Err(FrameError::Io { kind: e.kind() }),
        }
    }
    read_frame_after_kind(r, kind_byte[0], max_len).map(Some)
}

fn read_frame_after_kind(
    r: &mut impl Read,
    kind_byte: u8,
    max_len: usize,
) -> Result<Frame, FrameError> {
    let kind =
        FrameKind::from_byte(kind_byte).ok_or(FrameError::BadFrameType { byte: kind_byte })?;
    let mut len_bytes = [0u8; 4];
    read_full(r, &mut len_bytes, "frame length")?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, "frame payload")?;
    Ok(Frame { kind, payload })
}

/// Writes one frame.
///
/// # Errors
///
/// [`FrameError::TooLarge`] if the payload does not fit a `u32` length,
/// otherwise [`FrameError::Timeout`] / [`FrameError::Io`].
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > u32::MAX as usize {
        return Err(FrameError::TooLarge {
            len: payload.len(),
            max: u32::MAX as usize,
        });
    }
    let mut header = [0u8; 5];
    header[0] = kind.as_byte();
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    write_full(w, &header)?;
    write_full(w, payload)?;
    match w.flush() {
        Ok(()) => Ok(()),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(FrameError::Timeout)
        }
        Err(e) => Err(FrameError::Io { kind: e.kind() }),
    }
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Encodes a [`FrameKind::Query`] payload.
pub fn encode_query(alphabet_csv: &str, pattern: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + alphabet_csv.len() + pattern.len());
    out.extend_from_slice(&(alphabet_csv.len() as u16).to_le_bytes());
    out.extend_from_slice(alphabet_csv.as_bytes());
    out.extend_from_slice(pattern.as_bytes());
    out
}

/// Decodes a [`FrameKind::Query`] payload into `(alphabet_csv,
/// pattern)`.
///
/// # Errors
///
/// [`FrameError::BadPayload`] on short payloads, length lies, or
/// non-UTF-8 text.
pub fn decode_query(payload: &[u8]) -> Result<(String, String), FrameError> {
    if payload.len() < 2 {
        return Err(bad_payload("QUERY payload shorter than its header"));
    }
    let alpha_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
    let rest = &payload[2..];
    if alpha_len > rest.len() {
        return Err(bad_payload(format!(
            "QUERY alphabet length {alpha_len} exceeds the {} payload byte(s) present",
            rest.len()
        )));
    }
    if alpha_len == 0 {
        return Err(bad_payload("QUERY with an empty alphabet"));
    }
    let csv = std::str::from_utf8(&rest[..alpha_len])
        .map_err(|_| bad_payload("QUERY alphabet is not UTF-8"))?;
    let pattern = std::str::from_utf8(&rest[alpha_len..])
        .map_err(|_| bad_payload("QUERY pattern is not UTF-8"))?;
    if pattern.is_empty() {
        return Err(bad_payload("QUERY with an empty pattern"));
    }
    Ok((csv.to_owned(), pattern.to_owned()))
}

/// Encodes a [`FrameKind::MultiQuery`] payload.
pub fn encode_multi_query<S: AsRef<str>>(alphabet_csv: &str, patterns: &[S]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(alphabet_csv.len() as u16).to_le_bytes());
    out.extend_from_slice(alphabet_csv.as_bytes());
    out.extend_from_slice(&(patterns.len() as u16).to_le_bytes());
    for p in patterns {
        let p = p.as_ref();
        out.extend_from_slice(&(p.len() as u16).to_le_bytes());
        out.extend_from_slice(p.as_bytes());
    }
    out
}

/// Decodes a [`FrameKind::MultiQuery`] payload into `(alphabet_csv,
/// patterns)`.
///
/// # Errors
///
/// [`FrameError::BadPayload`] on any structural lie: short headers,
/// counts past the payload, an empty pattern list, or trailing bytes.
pub fn decode_multi_query(payload: &[u8]) -> Result<(String, Vec<String>), FrameError> {
    if payload.len() < 2 {
        return Err(bad_payload("MQUERY payload shorter than its header"));
    }
    let alpha_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
    let mut at = 2;
    if alpha_len == 0 || at + alpha_len > payload.len() {
        return Err(bad_payload("MQUERY alphabet length is empty or lies"));
    }
    let csv = std::str::from_utf8(&payload[at..at + alpha_len])
        .map_err(|_| bad_payload("MQUERY alphabet is not UTF-8"))?
        .to_owned();
    at += alpha_len;
    if at + 2 > payload.len() {
        return Err(bad_payload("MQUERY payload ends before its pattern count"));
    }
    let count = u16::from_le_bytes([payload[at], payload[at + 1]]) as usize;
    at += 2;
    if count == 0 {
        return Err(bad_payload("MQUERY with zero patterns"));
    }
    let mut patterns = Vec::with_capacity(count);
    for i in 0..count {
        if at + 2 > payload.len() {
            return Err(bad_payload(format!(
                "MQUERY payload ends before pattern {i}'s length"
            )));
        }
        let len = u16::from_le_bytes([payload[at], payload[at + 1]]) as usize;
        at += 2;
        if len == 0 {
            return Err(bad_payload(format!("MQUERY pattern {i} is empty")));
        }
        if at + len > payload.len() {
            return Err(bad_payload(format!(
                "MQUERY pattern {i}'s length {len} exceeds the payload"
            )));
        }
        let p = std::str::from_utf8(&payload[at..at + len])
            .map_err(|_| bad_payload(format!("MQUERY pattern {i} is not UTF-8")))?;
        patterns.push(p.to_owned());
        at += len;
    }
    if at != payload.len() {
        return Err(bad_payload(format!(
            "{} trailing byte(s) after the last MQUERY pattern",
            payload.len() - at
        )));
    }
    Ok((csv, patterns))
}

/// Encodes a [`FrameKind::Matches`] payload.
pub fn encode_matches(ids: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 8 * ids.len());
    out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &id in ids {
        out.extend_from_slice(&(id as u64).to_le_bytes());
    }
    out
}

/// Decodes a [`FrameKind::Matches`] payload.
///
/// # Errors
///
/// [`FrameError::BadPayload`] unless the payload is exactly
/// `4 + 8 * count` bytes.
pub fn decode_matches(payload: &[u8]) -> Result<Vec<usize>, FrameError> {
    let (ids, at) = decode_id_block(payload, 0)?;
    if at != payload.len() {
        return Err(bad_payload("trailing bytes after the MATCHES ids"));
    }
    Ok(ids)
}

fn decode_id_block(payload: &[u8], mut at: usize) -> Result<(Vec<usize>, usize), FrameError> {
    if at + 4 > payload.len() {
        return Err(bad_payload("payload ends before an id count"));
    }
    let count = u32::from_le_bytes([
        payload[at],
        payload[at + 1],
        payload[at + 2],
        payload[at + 3],
    ]) as usize;
    at += 4;
    if payload.len().saturating_sub(at) < count.saturating_mul(8) {
        return Err(bad_payload(format!(
            "id count {count} exceeds the payload bytes present"
        )));
    }
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        let mut b = [0u8; 8];
        b.copy_from_slice(&payload[at..at + 8]);
        ids.push(u64::from_le_bytes(b) as usize);
        at += 8;
    }
    Ok((ids, at))
}

/// Encodes a [`FrameKind::MultiMatches`] payload.
pub fn encode_multi_matches(members: &[Vec<usize>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(members.len() as u32).to_le_bytes());
    for ids in members {
        out.extend_from_slice(&encode_matches(ids));
    }
    out
}

/// Decodes a [`FrameKind::MultiMatches`] payload.
///
/// # Errors
///
/// [`FrameError::BadPayload`] on any structural inconsistency.
pub fn decode_multi_matches(payload: &[u8]) -> Result<Vec<Vec<usize>>, FrameError> {
    if payload.len() < 4 {
        return Err(bad_payload("MULTI_MATCHES payload shorter than its header"));
    }
    let members = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
    let mut at = 4;
    let mut out = Vec::with_capacity(members.min(1024));
    for _ in 0..members {
        let (ids, next) = decode_id_block(payload, at)?;
        out.push(ids);
        at = next;
    }
    if at != payload.len() {
        return Err(bad_payload("trailing bytes after the last member's ids"));
    }
    Ok(out)
}

/// Encodes a [`FrameKind::MatchPart`] payload: the matches at stream
/// positions `start..start + matches.len()`.
pub fn encode_match_part(start: u64, matches: &[StreamedMatch]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 16 * matches.len());
    out.extend_from_slice(&start.to_le_bytes());
    out.extend_from_slice(&(matches.len() as u32).to_le_bytes());
    for m in matches {
        out.extend_from_slice(&(m.node as u64).to_le_bytes());
        out.extend_from_slice(&(m.offset as u64).to_le_bytes());
    }
    out
}

/// Decodes a [`FrameKind::MatchPart`] payload into `(start, matches)`.
///
/// # Errors
///
/// [`FrameError::BadPayload`] unless the payload is exactly
/// `12 + 16 * count` bytes.
pub fn decode_match_part(payload: &[u8]) -> Result<(u64, Vec<StreamedMatch>), FrameError> {
    if payload.len() < 12 {
        return Err(bad_payload("MATCH_PART payload shorter than its header"));
    }
    let start = u64::from_le_bytes(payload[..8].try_into().expect("length checked"));
    let count = u32::from_le_bytes(payload[8..12].try_into().expect("length checked")) as usize;
    let body = &payload[12..];
    if body.len() != count.saturating_mul(16) {
        return Err(bad_payload(format!(
            "MATCH_PART claims {count} match(es) but carries {} body byte(s)",
            body.len()
        )));
    }
    let mut matches = Vec::with_capacity(count);
    for pair in body.chunks_exact(16) {
        matches.push(StreamedMatch {
            node: u64::from_le_bytes(pair[..8].try_into().expect("chunk is 16 bytes")) as usize,
            offset: u64::from_le_bytes(pair[8..].try_into().expect("chunk is 16 bytes")) as usize,
        });
    }
    Ok((start, matches))
}

/// Encodes the final [`FrameKind::Matches`] payload of a *streaming*
/// request: the plain id block followed by the emission cursor, so the
/// client can verify that the parts it accumulated are exactly the
/// stream the server delivered (count and FNV-1a digest both).
pub fn encode_matches_with_cursor(ids: &[usize], cursor: EmissionCursor) -> Vec<u8> {
    let mut out = encode_matches(ids);
    out.extend_from_slice(&cursor.count.to_le_bytes());
    out.extend_from_slice(&cursor.digest.to_le_bytes());
    out
}

/// Decodes a final streaming [`FrameKind::Matches`] payload into
/// `(ids, cursor)`.
///
/// # Errors
///
/// [`FrameError::BadPayload`] unless the payload is exactly the id
/// block plus 16 cursor bytes.
pub fn decode_matches_with_cursor(
    payload: &[u8],
) -> Result<(Vec<usize>, EmissionCursor), FrameError> {
    let (ids, at) = decode_id_block(payload, 0)?;
    if payload.len() != at + 16 {
        return Err(bad_payload(
            "streaming MATCHES payload is not ids + a 16-byte cursor",
        ));
    }
    let count = u64::from_le_bytes(payload[at..at + 8].try_into().expect("length checked"));
    let digest = u64::from_le_bytes(payload[at + 8..at + 16].try_into().expect("length checked"));
    Ok((ids, EmissionCursor { count, digest }))
}

/// Encodes a [`FrameKind::Error`] payload.
pub fn encode_error(code: u16, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&code.to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes a [`FrameKind::Error`] payload into `(code, message)`.
///
/// # Errors
///
/// [`FrameError::BadPayload`] on a short payload (the message may be
/// empty; non-UTF-8 text is replaced, not rejected — the code is the
/// contract, the message is advisory).
pub fn decode_error(payload: &[u8]) -> Result<(u16, String), FrameError> {
    if payload.len() < 2 {
        return Err(bad_payload("ERROR payload shorter than its code"));
    }
    let code = u16::from_le_bytes([payload[0], payload[1]]);
    let message = String::from_utf8_lossy(&payload[2..]).into_owned();
    Ok((code, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, kind, payload).unwrap();
        out
    }

    #[test]
    fn frame_round_trip() {
        let bytes = frame_bytes(FrameKind::Chunk, b"<a></a>");
        let f = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(f.kind, FrameKind::Chunk);
        assert_eq!(f.payload, b"<a></a>");
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut bytes = vec![FrameKind::Chunk.as_byte()];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&bytes), 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::TooLarge {
                len: u32::MAX as usize,
                max: 1024
            }
        );
    }

    #[test]
    fn torn_frame_is_truncated_not_a_hang() {
        let bytes = frame_bytes(FrameKind::Chunk, b"payload");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut]), 1024).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn eof_before_any_byte_is_a_polite_none() {
        assert_eq!(
            read_frame_or_eof(&mut Cursor::new(&[]), 1024).unwrap(),
            None
        );
    }

    #[test]
    fn bad_frame_type_is_typed() {
        let err = read_frame(&mut Cursor::new(&[0x7f, 0, 0, 0, 0]), 1024).unwrap_err();
        assert_eq!(err, FrameError::BadFrameType { byte: 0x7f });
    }

    #[test]
    fn preamble_mismatch_is_typed() {
        let err = read_preamble(&mut Cursor::new(b"HTTP")).unwrap_err();
        assert_eq!(err, FrameError::BadPreamble { got: *b"HTTP" });
    }

    #[test]
    fn query_payload_round_trip_and_lies() {
        let p = encode_query("a,b,c", ".*a");
        assert_eq!(
            decode_query(&p).unwrap(),
            ("a,b,c".to_owned(), ".*a".to_owned())
        );
        // Length lying past the payload.
        let mut lie = p.clone();
        lie[0] = 0xff;
        lie[1] = 0xff;
        assert!(decode_query(&lie).is_err());
        // Empty payloads and empty patterns.
        assert!(decode_query(&[]).is_err());
        assert!(decode_query(&encode_query("a,b", "")).is_err());
    }

    #[test]
    fn multi_query_round_trip_and_trailing_garbage() {
        let p = encode_multi_query("a,b", &[".*a", ".*b", ".*a.*b"]);
        let (csv, pats) = decode_multi_query(&p).unwrap();
        assert_eq!(csv, "a,b");
        assert_eq!(pats, vec![".*a", ".*b", ".*a.*b"]);
        let mut garbage = p.clone();
        garbage.push(0);
        assert!(decode_multi_query(&garbage).is_err());
        assert!(decode_multi_query(&encode_multi_query::<&str>("a,b", &[])).is_err());
    }

    #[test]
    fn matches_round_trip_and_count_lies() {
        let p = encode_matches(&[0, 3, 17]);
        assert_eq!(decode_matches(&p).unwrap(), vec![0, 3, 17]);
        let mut lie = p.clone();
        lie[0] = 200; // claims 200 ids, carries 3
        assert!(decode_matches(&lie).is_err());
        let multi = encode_multi_matches(&[vec![1, 2], vec![], vec![9]]);
        assert_eq!(
            decode_multi_matches(&multi).unwrap(),
            vec![vec![1, 2], vec![], vec![9]]
        );
    }

    #[test]
    fn match_part_round_trip_and_lies() {
        let ms = vec![
            StreamedMatch {
                node: 3,
                offset: 17,
            },
            StreamedMatch {
                node: 9,
                offset: 140,
            },
        ];
        let p = encode_match_part(5, &ms);
        assert_eq!(decode_match_part(&p).unwrap(), (5, ms.clone()));
        // Empty parts are legal (a chunk that decided nothing).
        let empty = encode_match_part(7, &[]);
        assert_eq!(decode_match_part(&empty).unwrap(), (7, vec![]));
        // Count lies and torn bodies are typed, never panics.
        let mut lie = p.clone();
        lie[8] = 200;
        assert!(decode_match_part(&lie).is_err());
        assert!(decode_match_part(&p[..p.len() - 1]).is_err());
        assert!(decode_match_part(&[0; 11]).is_err());
    }

    #[test]
    fn matches_with_cursor_round_trip_and_lies() {
        let cursor = EmissionCursor::over(&[StreamedMatch { node: 1, offset: 4 }]);
        let p = encode_matches_with_cursor(&[1], cursor);
        let (ids, c) = decode_matches_with_cursor(&p).unwrap();
        assert_eq!(ids, vec![1]);
        assert_eq!(c, cursor);
        // A plain MATCHES payload (no cursor) is rejected by the
        // streaming decoder, and the cursor-carrying payload is rejected
        // by the plain decoder — the two response shapes cannot be
        // silently confused.
        assert!(decode_matches_with_cursor(&encode_matches(&[1])).is_err());
        assert!(decode_matches(&p).is_err());
        assert!(decode_matches_with_cursor(&p[..p.len() - 1]).is_err());
    }

    #[test]
    fn stream_frame_kinds_round_trip_their_bytes() {
        assert_eq!(
            FrameKind::from_byte(FrameKind::StreamQuery.as_byte()),
            Some(FrameKind::StreamQuery)
        );
        assert_eq!(
            FrameKind::from_byte(FrameKind::MatchPart.as_byte()),
            Some(FrameKind::MatchPart)
        );
    }

    #[test]
    fn error_payload_round_trip() {
        let p = encode_error(codes::SLOW_CLIENT, "too slow");
        assert_eq!(
            decode_error(&p).unwrap(),
            (codes::SLOW_CLIENT, "too slow".to_owned())
        );
        assert!(decode_error(&[1]).is_err());
    }
}
