//! The TCP front-end: a [`NetServer`] that speaks the [`crate::frame`]
//! protocol and streams document bytes straight into checkpointed
//! engine sessions, plus the small blocking [`NetClient`] the CLI,
//! tests, and the network chaos harness drive it with.
//!
//! Connection-level robustness is the point of this module:
//!
//! * **Deadlines.**  Every connection carries read and write deadlines
//!   (socket timeouts); expiry surfaces as a typed error
//!   ([`crate::error::codes::READ_TIMEOUT`] /
//!   [`crate::error::codes::WRITE_TIMEOUT`]) on the wire and a counter
//!   in the stats, never a hung handler.
//! * **Backpressure.**  Socket reads are tied to the service-level
//!   in-flight byte budget ([`crate::ServiceBudget`]): a chunk is not
//!   read past the budget — the handler first *waits* (bounded by
//!   [`NetConfig::shed_wait`], i.e. genuine backpressure: the TCP window
//!   fills and the client blocks), then *sheds* with a typed
//!   `OVERLOADED` error frame.  A document that could never fit the
//!   budget is rejected outright (`REJECTED`).
//! * **Slow-client detection.**  A min-throughput watchdog on the
//!   injectable clock ([`st_core::session::ClockFn`]) kills uploads
//!   whose sustained rate falls below the configured floor
//!   (`SLOW_CLIENT`), so a trickling client cannot squat a handler and
//!   budget bytes indefinitely.
//! * **Bounded buffers.**  The frame codec validates lengths before
//!   allocating; per-connection memory is bounded by
//!   [`NetConfig::max_frame_len`] plus the session state.
//! * **Graceful drain.**  [`NetServer::begin_drain`] refuses new
//!   connections and new requests; in-flight requests checkpoint and
//!   finish.  [`NetServer::shutdown`] drains, waits up to
//!   [`NetConfig::drain_timeout`], then force-closes stragglers.
//!
//! Compiled plans are shared across connections through a bounded
//! [`PlanCache`], so a hot pattern is determinized once no matter how
//! many connections replay it.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use st_automata::Alphabet;
use st_core::plancache::PlanCache;
use st_core::queryset::{QuerySet, DEFAULT_PRODUCT_BUDGET};
use st_core::session::{monotonic_clock, ClockFn, SessionError};
use st_obs::{Counter, Gauge, Histogram, ObsHandle, TraceEvent};

use st_core::emit::{EmissionCursor, StreamedMatch};

use crate::config::ServiceBudget;
use crate::error::codes;
use crate::frame::{
    decode_error, decode_match_part, decode_matches, decode_matches_with_cursor,
    decode_multi_matches, decode_multi_query, decode_query, encode_error, encode_match_part,
    encode_matches, encode_matches_with_cursor, encode_multi_matches, encode_multi_query,
    encode_query, read_frame, read_frame_or_eof, read_preamble, write_frame, write_preamble, Frame,
    FrameError, FrameKind, DEFAULT_MAX_FRAME_LEN, RESPONSE_MAX_FRAME_LEN,
};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can end a connection's request short of success.
/// Each variant maps to a stable wire code ([`NetError::wire_code`],
/// exhaustive by design).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The transport or frame codec failed (torn frame, bad header,
    /// read deadline, disconnect).
    Frame(FrameError),
    /// A frame the protocol state machine does not allow here (e.g.
    /// document bytes before any query, or a reply kind from a client).
    Protocol {
        /// What arrived and why it is out of place.
        detail: String,
    },
    /// The query payload decoded but did not compile (bad alphabet or
    /// pattern).
    BadQuery {
        /// The compile diagnostic.
        detail: String,
    },
    /// The in-flight byte budget stayed exhausted past
    /// [`NetConfig::shed_wait`]; the request was shed.
    Overloaded {
        /// Bytes in flight when the request was shed.
        held: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The request could never fit the budget (a single chunk larger
    /// than the whole in-flight allowance).
    Rejected {
        /// Why admission said no.
        reason: String,
    },
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The client's sustained upload throughput fell below the floor.
    SlowClient {
        /// Bytes received so far.
        bytes: u64,
        /// Milliseconds since the request opened.
        elapsed_ms: u64,
        /// The configured floor (bytes/second).
        floor: u64,
    },
    /// The engine rejected the document (parse error or limit breach).
    Engine(SessionError),
    /// A write deadline expired: the client is not draining replies.
    WriteTimeout,
}

impl NetError {
    /// The stable numeric code this error travels under in an `ERROR`
    /// frame.  Exhaustive — see [`crate::error::codes`].
    pub fn wire_code(&self) -> u16 {
        match self {
            NetError::Frame(e) => e.wire_code(),
            NetError::Protocol { .. } => codes::PROTOCOL,
            NetError::BadQuery { .. } => codes::BAD_QUERY,
            NetError::Overloaded { .. } => codes::OVERLOADED,
            NetError::Rejected { .. } => codes::REJECTED,
            NetError::ShuttingDown => codes::SHUTTING_DOWN,
            NetError::SlowClient { .. } => codes::SLOW_CLIENT,
            NetError::Engine(_) => codes::ENGINE,
            NetError::WriteTimeout => codes::WRITE_TIMEOUT,
        }
    }

    /// A short, stable class name (connection-close reasons in traces).
    pub fn class(&self) -> &'static str {
        match self {
            NetError::Frame(FrameError::Timeout) => "read-timeout",
            NetError::Frame(_) => "bad-frame",
            NetError::Protocol { .. } => "protocol",
            NetError::BadQuery { .. } => "bad-query",
            NetError::Overloaded { .. } => "overloaded",
            NetError::Rejected { .. } => "rejected",
            NetError::ShuttingDown => "shutting-down",
            NetError::SlowClient { .. } => "slow-client",
            NetError::Engine(_) => "engine",
            NetError::WriteTimeout => "write-timeout",
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "{e}"),
            NetError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            NetError::BadQuery { detail } => write!(f, "bad query: {detail}"),
            NetError::Overloaded { held, budget } => {
                write!(f, "overloaded: {held}/{budget} byte(s) in flight")
            }
            NetError::Rejected { reason } => write!(f, "rejected: {reason}"),
            NetError::ShuttingDown => write!(f, "server is draining"),
            NetError::SlowClient {
                bytes,
                elapsed_ms,
                floor,
            } => write!(
                f,
                "client too slow: {bytes} byte(s) in {elapsed_ms} ms (floor {floor} B/s)"
            ),
            NetError::Engine(e) => write!(f, "{e}"),
            NetError::WriteTimeout => write!(f, "write deadline expired"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> NetError {
        NetError::Frame(e)
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Maximum concurrent connections; further accepts are refused with
    /// an `OVERLOADED` error frame.
    pub max_connections: usize,
    /// Per-connection read deadline: a socket read blocked this long is
    /// a typed `READ_TIMEOUT`.
    pub read_timeout: Duration,
    /// Per-connection write deadline: a reply write blocked this long
    /// (the client is not reading) is a typed `WRITE_TIMEOUT`.
    pub write_timeout: Duration,
    /// Minimum sustained upload throughput (bytes/second) a request
    /// must maintain once [`NetConfig::throughput_grace`] has passed;
    /// below it the request dies with `SLOW_CLIENT`.  `None` disables
    /// the watchdog (the read deadline still bounds total silence).
    pub min_throughput: Option<u64>,
    /// Grace period before the throughput floor is enforced.
    pub throughput_grace: Duration,
    /// Maximum accepted frame payload, enforced before allocation.
    pub max_frame_len: usize,
    /// Checkpoint cadence in document bytes: in-flight sessions mint a
    /// checkpoint after every this-many bytes, so a drain or post-mortem
    /// always has a recent resumable snapshot.
    pub checkpoint_every: usize,
    /// How long a handler waits for in-flight bytes to free up before
    /// shedding the chunk with `OVERLOADED`.  While waiting, the socket
    /// is simply not read — TCP backpressure reaches the client.
    pub shed_wait: Duration,
    /// How long [`NetServer::shutdown`] waits for in-flight connections
    /// to drain before force-closing them.
    pub drain_timeout: Duration,
    /// Compiled-plan cache capacity (entries); `0` disables caching.
    pub plan_cache_capacity: usize,
    /// Product-DFA state budget for multi-query requests (see
    /// [`QuerySet::compile_with_budget`]).
    pub product_budget: usize,
    /// The service-level budget: the aggregate in-flight byte cap the
    /// backpressure ties socket reads to, and the per-session
    /// [`st_core::session::Limits`] every request runs under (whose
    /// injectable clock also drives the throughput watchdog).
    pub budget: ServiceBudget,
    /// Observability sink (gauges, counters, histograms, connection
    /// trace events).
    pub obs: ObsHandle,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_connections: 32,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            min_throughput: None,
            throughput_grace: Duration::from_secs(1),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            checkpoint_every: 64 << 10,
            shed_wait: Duration::from_millis(50),
            drain_timeout: Duration::from_secs(5),
            plan_cache_capacity: 64,
            product_budget: DEFAULT_PRODUCT_BUDGET,
            budget: ServiceBudget::default(),
            obs: ObsHandle::disabled(),
        }
    }
}

impl NetConfig {
    /// Sets the connection cap.
    pub fn with_max_connections(mut self, n: usize) -> NetConfig {
        self.max_connections = n.max(1);
        self
    }

    /// Sets both socket deadlines.
    pub fn with_timeouts(mut self, read: Duration, write: Duration) -> NetConfig {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Arms the min-throughput watchdog.
    pub fn with_min_throughput(mut self, bytes_per_sec: u64, grace: Duration) -> NetConfig {
        self.min_throughput = Some(bytes_per_sec);
        self.throughput_grace = grace;
        self
    }

    /// Sets the maximum accepted frame payload.
    pub fn with_max_frame_len(mut self, len: usize) -> NetConfig {
        self.max_frame_len = len.max(64);
        self
    }

    /// Sets the checkpoint cadence in bytes.
    pub fn with_checkpoint_every(mut self, bytes: usize) -> NetConfig {
        self.checkpoint_every = bytes.max(1);
        self
    }

    /// Sets the backpressure wait before shedding.
    pub fn with_shed_wait(mut self, wait: Duration) -> NetConfig {
        self.shed_wait = wait;
        self
    }

    /// Sets the drain deadline of [`NetServer::shutdown`].
    pub fn with_drain_timeout(mut self, timeout: Duration) -> NetConfig {
        self.drain_timeout = timeout;
        self
    }

    /// Sets the plan-cache capacity (`0` disables caching).
    pub fn with_plan_cache_capacity(mut self, entries: usize) -> NetConfig {
        self.plan_cache_capacity = entries;
        self
    }

    /// Sets the multi-query product-DFA state budget.
    pub fn with_product_budget(mut self, budget: usize) -> NetConfig {
        self.product_budget = budget;
        self
    }

    /// Sets the service budget (in-flight byte cap + session limits).
    pub fn with_budget(mut self, budget: ServiceBudget) -> NetConfig {
        self.budget = budget;
        self
    }

    /// Attaches an observability handle.
    pub fn with_obs(mut self, obs: ObsHandle) -> NetConfig {
        self.obs = obs;
        self
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Point-in-time counters of a [`NetServer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted (including ones later refused).
    pub connections: u64,
    /// Connections turned away at accept (draining, or at the
    /// connection cap).
    pub refused: u64,
    /// Connections currently open.
    pub open: u64,
    /// Requests opened (QUERY/MQUERY frames that decoded and compiled).
    pub requests: u64,
    /// Requests answered with a success frame.
    pub completed: u64,
    /// Requests that ended in an error (any cause).
    pub failed: u64,
    /// Read deadlines expired.
    pub read_timeouts: u64,
    /// Write deadlines expired.
    pub write_timeouts: u64,
    /// Uploads killed by the min-throughput watchdog.
    pub slow_clients: u64,
    /// Chunks shed because the byte budget stayed full past the wait.
    pub shed: u64,
    /// Requests rejected outright (could never fit the budget).
    pub rejected: u64,
    /// Framing/protocol violations (bad preambles, torn frames,
    /// length lies, out-of-place frames, bad queries).
    pub bad_frames: u64,
    /// Checkpoints minted by in-flight sessions.
    pub checkpoints: u64,
    /// Document bytes currently held in flight.
    pub in_flight_bytes: u64,
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conns {} (open {}, refused {}), requests {} (ok {}, failed {}), \
             timeouts r/w {}/{}, slow {}, shed {}, rejected {}, bad frames {}, \
             checkpoints {}, in-flight {} B",
            self.connections,
            self.open,
            self.refused,
            self.requests,
            self.completed,
            self.failed,
            self.read_timeouts,
            self.write_timeouts,
            self.slow_clients,
            self.shed,
            self.rejected,
            self.bad_frames,
            self.checkpoints,
            self.in_flight_bytes,
        )
    }
}

#[derive(Default)]
struct NetCounters {
    connections: AtomicU64,
    refused: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    read_timeouts: AtomicU64,
    write_timeouts: AtomicU64,
    slow_clients: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    bad_frames: AtomicU64,
    checkpoints: AtomicU64,
}

struct NetObs {
    conns_open: Gauge,
    connections: Counter,
    refused: Counter,
    requests: Counter,
    completed: Counter,
    failed: Counter,
    read_timeouts: Counter,
    write_timeouts: Counter,
    slow_clients: Counter,
    shed: Counter,
    rejected: Counter,
    bad_frames: Counter,
    checkpoints: Counter,
    request_latency_ms: Histogram,
    request_bytes: Histogram,
}

impl NetObs {
    fn new(obs: &ObsHandle) -> NetObs {
        NetObs {
            conns_open: obs.gauge("net_connections_open"),
            connections: obs.counter("net_connections_total"),
            refused: obs.counter("net_refused_total"),
            requests: obs.counter("net_requests_total"),
            completed: obs.counter("net_completed_total"),
            failed: obs.counter("net_failed_total"),
            read_timeouts: obs.counter("net_read_timeouts_total"),
            write_timeouts: obs.counter("net_write_timeouts_total"),
            slow_clients: obs.counter("net_slow_clients_total"),
            shed: obs.counter("net_shed_total"),
            rejected: obs.counter("net_rejected_total"),
            bad_frames: obs.counter("net_bad_frames_total"),
            checkpoints: obs.counter("net_checkpoints_total"),
            request_latency_ms: obs.histogram("net_request_latency_ms"),
            request_bytes: obs.histogram("net_request_doc_bytes"),
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct NetInner {
    cfg: NetConfig,
    clock: ClockFn,
    draining: AtomicBool,
    in_flight_bytes: AtomicUsize,
    open_conns: AtomicUsize,
    next_conn_id: AtomicU64,
    cache: Arc<PlanCache>,
    /// `try_clone`d handles of live connections, so shutdown can cut
    /// through reads blocked on their socket deadline.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    c: NetCounters,
    o: NetObs,
}

impl NetInner {
    fn now_ms(&self) -> u64 {
        (self.clock)().as_millis() as u64
    }

    fn release_bytes(&self, n: usize) {
        if n > 0 {
            self.in_flight_bytes.fetch_sub(n, Ordering::SeqCst);
        }
    }

    /// Charges `n` bytes against the in-flight budget, waiting (bounded
    /// backpressure) then shedding.  `held` is what this request already
    /// holds, counted inside the budget.
    fn acquire_bytes(&self, n: usize, held: usize) -> Result<(), NetError> {
        let Some(cap) = self.cfg.budget.max_in_flight_bytes else {
            self.in_flight_bytes.fetch_add(n, Ordering::SeqCst);
            return Ok(());
        };
        if held.saturating_add(n) > cap {
            return Err(NetError::Rejected {
                reason: format!(
                    "document needs {} byte(s) in flight, budget is {cap}",
                    held + n
                ),
            });
        }
        let deadline = std::time::Instant::now() + self.cfg.shed_wait;
        loop {
            let res =
                self.in_flight_bytes
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                        (cur + n <= cap).then_some(cur + n)
                    });
            if res.is_ok() {
                return Ok(());
            }
            if std::time::Instant::now() >= deadline {
                return Err(NetError::Overloaded {
                    held: self.in_flight_bytes.load(Ordering::SeqCst),
                    budget: cap,
                });
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Bumps the per-cause counters of a request/connection failure.
    /// `ShuttingDown` is not a failure — it is the drain refusing new
    /// work — so it counts under `refused`, not `failed`.
    fn count_failure(&self, err: &NetError) {
        if matches!(err, NetError::ShuttingDown) {
            self.c.refused.fetch_add(1, Ordering::SeqCst);
            self.o.refused.incr();
            return;
        }
        self.c.failed.fetch_add(1, Ordering::SeqCst);
        self.o.failed.incr();
        match err {
            NetError::Frame(FrameError::Timeout) => {
                self.c.read_timeouts.fetch_add(1, Ordering::SeqCst);
                self.o.read_timeouts.incr();
            }
            NetError::WriteTimeout => {
                self.c.write_timeouts.fetch_add(1, Ordering::SeqCst);
                self.o.write_timeouts.incr();
            }
            NetError::SlowClient { .. } => {
                self.c.slow_clients.fetch_add(1, Ordering::SeqCst);
                self.o.slow_clients.incr();
            }
            NetError::Overloaded { .. } => {
                self.c.shed.fetch_add(1, Ordering::SeqCst);
                self.o.shed.incr();
            }
            NetError::Rejected { .. } => {
                self.c.rejected.fetch_add(1, Ordering::SeqCst);
                self.o.rejected.incr();
            }
            NetError::Frame(_) | NetError::Protocol { .. } | NetError::BadQuery { .. } => {
                self.c.bad_frames.fetch_add(1, Ordering::SeqCst);
                self.o.bad_frames.incr();
            }
            NetError::ShuttingDown | NetError::Engine(_) => {}
        }
    }
}

/// A TCP front-end serving the [`crate::frame`] protocol.  Bind with
/// [`NetServer::bind`]; the accept loop and one handler thread per
/// connection run in the background until [`NetServer::shutdown`].
pub struct NetServer {
    inner: Arc<NetInner>,
    local_addr: SocketAddr,
    stop_accept: Arc<AtomicBool>,
    accept: Mutex<Option<JoinHandle<()>>>,
    shut: AtomicBool,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections.
    ///
    /// # Errors
    ///
    /// The bind error, verbatim.
    pub fn bind(addr: &str, cfg: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let clock = cfg.budget.session_limits.clock.unwrap_or(monotonic_clock);
        let cache = Arc::new(PlanCache::with_obs(cfg.plan_cache_capacity, &cfg.obs));
        let o = NetObs::new(&cfg.obs);
        let inner = Arc::new(NetInner {
            cfg,
            clock,
            draining: AtomicBool::new(false),
            in_flight_bytes: AtomicUsize::new(0),
            open_conns: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(1),
            cache,
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            c: NetCounters::default(),
            o,
        });
        let stop_accept = Arc::new(AtomicBool::new(false));
        let accept = {
            let inner = inner.clone();
            let stop = stop_accept.clone();
            thread::Builder::new()
                .name("st-net-accept".to_owned())
                .spawn(move || accept_loop(&inner, &listener, &stop))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            inner,
            local_addr,
            stop_accept,
            accept: Mutex::new(Some(accept)),
            shut: AtomicBool::new(false),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared compiled-plan cache.
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        self.inner.cache.clone()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> NetStats {
        let c = &self.inner.c;
        NetStats {
            connections: c.connections.load(Ordering::SeqCst),
            refused: c.refused.load(Ordering::SeqCst),
            open: self.inner.open_conns.load(Ordering::SeqCst) as u64,
            requests: c.requests.load(Ordering::SeqCst),
            completed: c.completed.load(Ordering::SeqCst),
            failed: c.failed.load(Ordering::SeqCst),
            read_timeouts: c.read_timeouts.load(Ordering::SeqCst),
            write_timeouts: c.write_timeouts.load(Ordering::SeqCst),
            slow_clients: c.slow_clients.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            bad_frames: c.bad_frames.load(Ordering::SeqCst),
            checkpoints: c.checkpoints.load(Ordering::SeqCst),
            in_flight_bytes: self.inner.in_flight_bytes.load(Ordering::SeqCst) as u64,
        }
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Starts a graceful drain: new connections and new requests are
    /// refused with `SHUTTING_DOWN`; in-flight requests checkpoint and
    /// finish normally.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Drains, waits up to [`NetConfig::drain_timeout`] for in-flight
    /// connections to finish, force-closes stragglers, and joins every
    /// thread.  Idempotent.
    pub fn shutdown(&self) {
        if self.shut.swap(true, Ordering::SeqCst) {
            return;
        }
        self.begin_drain();
        self.stop_accept.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.lock().unwrap_or_else(|p| p.into_inner()).take() {
            let _ = h.join();
        }
        let deadline = std::time::Instant::now() + self.inner.cfg.drain_timeout;
        while self.inner.open_conns.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(2));
        }
        // Cut through any connection still blocked on its socket.
        {
            let conns = self.inner.conns.lock().unwrap_or_else(|p| p.into_inner());
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let handlers = std::mem::take(
            &mut *self
                .inner
                .handlers
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(inner: &Arc<NetInner>, listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                inner.c.connections.fetch_add(1, Ordering::SeqCst);
                inner.o.connections.incr();
                let refuse = if inner.draining.load(Ordering::SeqCst) {
                    Some((codes::SHUTTING_DOWN, "server is draining"))
                } else if inner.open_conns.load(Ordering::SeqCst) >= inner.cfg.max_connections {
                    Some((codes::OVERLOADED, "connection limit reached"))
                } else {
                    None
                };
                if let Some((code, msg)) = refuse {
                    inner.c.refused.fetch_add(1, Ordering::SeqCst);
                    inner.o.refused.incr();
                    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
                    let _ = write_frame(&mut stream, FrameKind::Error, &encode_error(code, msg));
                    continue;
                }
                let conn = inner.next_conn_id.fetch_add(1, Ordering::SeqCst);
                inner.open_conns.fetch_add(1, Ordering::SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    inner
                        .conns
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .insert(conn, clone);
                }
                let handle = {
                    let inner = inner.clone();
                    thread::Builder::new()
                        .name(format!("st-net-conn-{conn}"))
                        .spawn(move || handle_conn(&inner, stream, conn))
                        .expect("spawn connection handler")
                };
                let mut handlers = inner.handlers.lock().unwrap_or_else(|p| p.into_inner());
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_conn(inner: &Arc<NetInner>, mut stream: TcpStream, conn: u64) {
    let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    inner.o.conns_open.add(1);
    inner.cfg.obs.trace(TraceEvent::ConnOpened { conn });
    let reason = match conn_loop(inner, &mut stream, conn) {
        Ok(reason) => reason,
        Err(e) => {
            inner.count_failure(&e);
            // Best-effort typed goodbye; the transport may already be gone.
            let _ = write_frame(
                &mut stream,
                FrameKind::Error,
                &encode_error(e.wire_code(), &e.to_string()),
            );
            e.class()
        }
    };
    inner.cfg.obs.trace(TraceEvent::ConnClosed { conn, reason });
    inner.o.conns_open.add(-1);
    inner.open_conns.fetch_sub(1, Ordering::SeqCst);
    inner
        .conns
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&conn);
}

/// The per-connection protocol loop.  `Ok` carries the close reason of
/// a polite shutdown; `Err` closes the connection after a typed error
/// frame.  Any request-level error closes the connection — a client
/// whose stream position is ambiguous cannot be safely resynchronized.
fn conn_loop(
    inner: &Arc<NetInner>,
    stream: &mut TcpStream,
    conn: u64,
) -> Result<&'static str, NetError> {
    read_preamble(stream)?;
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            return Err(NetError::ShuttingDown);
        }
        let Some(frame) = read_frame_or_eof(stream, inner.cfg.max_frame_len)? else {
            return Ok("eof");
        };
        // Re-check after the (possibly long) blocking read: a request
        // arriving on an idle connection after the drain began is new
        // work, and new work is refused.
        if inner.draining.load(Ordering::SeqCst) {
            return Err(NetError::ShuttingDown);
        }
        match frame.kind {
            FrameKind::Query => {
                let (csv, pattern) = decode_query(&frame.payload)?;
                let compiled = parse_alphabet(&csv).and_then(|alphabet| {
                    inner
                        .cache
                        .get_or_compile(&pattern, &alphabet)
                        .map_err(|e| NetError::BadQuery {
                            detail: e.to_string(),
                        })
                });
                let query = match compiled {
                    Ok(q) => q,
                    Err(e) => return Err(drain_then_fail(inner, stream, e)),
                };
                inner.c.requests.fetch_add(1, Ordering::SeqCst);
                inner.o.requests.incr();
                serve_single(inner, stream, conn, &query)?;
            }
            FrameKind::StreamQuery => {
                let (csv, pattern) = decode_query(&frame.payload)?;
                let compiled = parse_alphabet(&csv).and_then(|alphabet| {
                    inner
                        .cache
                        .get_or_compile(&pattern, &alphabet)
                        .map_err(|e| NetError::BadQuery {
                            detail: e.to_string(),
                        })
                });
                let query = match compiled {
                    Ok(q) => q,
                    Err(e) => return Err(drain_then_fail(inner, stream, e)),
                };
                inner.c.requests.fetch_add(1, Ordering::SeqCst);
                inner.o.requests.incr();
                serve_single_stream(inner, stream, conn, &query)?;
            }
            FrameKind::MultiQuery => {
                let (csv, patterns) = decode_multi_query(&frame.payload)?;
                let compiled = parse_alphabet(&csv).and_then(|alphabet| {
                    QuerySet::compile_with_budget(&patterns, &alphabet, inner.cfg.product_budget)
                        .map_err(|e| NetError::BadQuery {
                            detail: e.to_string(),
                        })
                });
                let set = match compiled {
                    Ok(s) => s,
                    Err(e) => return Err(drain_then_fail(inner, stream, e)),
                };
                inner.c.requests.fetch_add(1, Ordering::SeqCst);
                inner.o.requests.incr();
                serve_multi(inner, stream, conn, &set)?;
            }
            other => {
                return Err(NetError::Protocol {
                    detail: format!("unexpected {other:?} frame outside a request"),
                })
            }
        }
    }
}

fn parse_alphabet(csv: &str) -> Result<Alphabet, NetError> {
    Alphabet::from_symbols(csv.split(',')).map_err(|e| NetError::BadQuery {
        detail: format!("bad alphabet: {e}"),
    })
}

/// Consumes the rest of a doomed request's upload (unbudgeted, frames
/// dropped on arrival), then reports `err`.
///
/// Why drain at all: erroring out *mid-upload* closes the socket with
/// unread client data in flight, which TCP answers with a reset — and a
/// reset can discard the typed error frame before the client reads it.
/// For failures decided by the request's own content (a bad query, an
/// engine rejection) the typed code is the contract, so the server
/// swallows the rest of the document first and the error frame lands on
/// a quiet connection.  Resource-protection failures (reject, shed,
/// deadline, slow client) deliberately do NOT drain — refusing to read
/// more bytes is their entire point, and their error frame is
/// best-effort.  The drain itself stays bounded: per-frame memory by
/// [`NetConfig::max_frame_len`], gaps by the read deadline, and total
/// volume by eight max-size frames, past which the failure is reported
/// immediately.
fn drain_then_fail(inner: &NetInner, stream: &mut TcpStream, err: NetError) -> NetError {
    let cap = inner.cfg.max_frame_len.saturating_mul(8);
    let mut drained = 0usize;
    loop {
        match read_frame(stream, inner.cfg.max_frame_len) {
            Ok(f) if f.kind == FrameKind::Chunk => {
                drained += f.payload.len();
                if drained > cap {
                    return err;
                }
            }
            // FINISH (the polite end), anything out of place, or any
            // framing/transport failure: the original error stands.
            Ok(_) | Err(_) => return err,
        }
    }
}

/// Tracks the budget bytes and watchdog state of one in-flight upload;
/// releases the held bytes on drop, so every exit path — success,
/// typed error, or panic unwind — returns its budget.
struct Upload<'i> {
    inner: &'i NetInner,
    held: usize,
    fed: u64,
    since_checkpoint: usize,
    started_ms: u64,
}

impl<'i> Upload<'i> {
    fn new(inner: &'i NetInner) -> Upload<'i> {
        Upload {
            inner,
            held: 0,
            fed: 0,
            since_checkpoint: 0,
            started_ms: inner.now_ms(),
        }
    }

    /// Budget + watchdog gate for one arriving chunk.
    fn admit_chunk(&mut self, payload: &[u8]) -> Result<(), NetError> {
        if payload.is_empty() {
            return Err(NetError::Frame(FrameError::BadPayload {
                detail: "empty CHUNK frame".to_owned(),
            }));
        }
        self.inner.acquire_bytes(payload.len(), self.held)?;
        self.held += payload.len();
        self.fed += payload.len() as u64;
        if let Some(floor) = self.inner.cfg.min_throughput {
            let elapsed_ms = self.inner.now_ms().saturating_sub(self.started_ms);
            if elapsed_ms > self.inner.cfg.throughput_grace.as_millis() as u64
                && self.fed.saturating_mul(1000) < floor.saturating_mul(elapsed_ms)
            {
                return Err(NetError::SlowClient {
                    bytes: self.fed,
                    elapsed_ms,
                    floor,
                });
            }
        }
        Ok(())
    }

    /// Whether the session should mint a checkpoint after this chunk.
    fn checkpoint_due(&mut self, chunk_len: usize) -> bool {
        self.since_checkpoint += chunk_len;
        if self.since_checkpoint >= self.inner.cfg.checkpoint_every {
            self.since_checkpoint = 0;
            self.inner.c.checkpoints.fetch_add(1, Ordering::SeqCst);
            self.inner.o.checkpoints.incr();
            true
        } else {
            false
        }
    }

    fn finish(self) -> (u64, u64) {
        let latency = self.inner.now_ms().saturating_sub(self.started_ms);
        (self.fed, latency)
    }
}

impl Drop for Upload<'_> {
    fn drop(&mut self) {
        self.inner.release_bytes(self.held);
    }
}

/// Counts the request completed, then writes the success frame.  The
/// counter moves *before* the write so that a client that has read the
/// reply always observes settled stats — the same ordering the error
/// path gets from counting failures before the error frame.  (A reply
/// that then fails to write additionally counts as a write timeout.)
fn send_reply(
    inner: &NetInner,
    stream: &mut TcpStream,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), NetError> {
    inner.c.completed.fetch_add(1, Ordering::SeqCst);
    inner.o.completed.incr();
    write_frame(stream, kind, payload).map_err(|e| match e {
        FrameError::Timeout => NetError::WriteTimeout,
        other => NetError::Frame(other),
    })
}

fn serve_single(
    inner: &NetInner,
    stream: &mut TcpStream,
    _conn: u64,
    query: &st_core::Query,
) -> Result<(), NetError> {
    let limits = inner.cfg.budget.session_limits_for(None, &inner.cfg.obs);
    let mut session = query.session(limits);
    let mut upload = Upload::new(inner);
    loop {
        let frame = read_frame(stream, inner.cfg.max_frame_len)?;
        match frame.kind {
            FrameKind::Chunk => {
                upload.admit_chunk(&frame.payload)?;
                if let Err(e) = session.feed(&frame.payload) {
                    // Content-determined failure mid-upload: swallow the
                    // rest so the typed error outlives the connection
                    // teardown (see `drain_then_fail`).
                    return Err(drain_then_fail(inner, stream, NetError::Engine(e)));
                }
                if upload.checkpoint_due(frame.payload.len()) {
                    let _ = session.checkpoint();
                }
            }
            FrameKind::Finish => {
                require_empty_finish(&frame)?;
                let outcome = session.finish().map_err(NetError::Engine)?;
                // Settle the budget and the histograms before the reply
                // goes out, so a client that has read it observes final
                // stats (no in-flight residue, counters moved).
                let (fed, latency) = upload.finish();
                inner.o.request_bytes.record(fed);
                inner.o.request_latency_ms.record(latency);
                send_reply(
                    inner,
                    stream,
                    FrameKind::Matches,
                    &encode_matches(&outcome.matches),
                )?;
                return Ok(());
            }
            other => {
                return Err(NetError::Protocol {
                    detail: format!("unexpected {other:?} frame inside a request"),
                })
            }
        }
    }
}

/// The streaming variant of [`serve_single`]: every `Chunk` is answered
/// with exactly one `MatchPart` carrying the matches that crossed the
/// certainty frontier during it (possibly zero), and the final `Matches`
/// reply carries the emission cursor so the client can verify that the
/// parts it accumulated are bitwise the stream the server delivered.
///
/// The strict lock step — the client must read each part before sending
/// its next chunk — is what makes the path deadlock-free under every
/// deadline/backpressure interaction: neither side ever has more than
/// one frame in flight toward a peer that is not reading.
fn serve_single_stream(
    inner: &NetInner,
    stream: &mut TcpStream,
    _conn: u64,
    query: &st_core::Query,
) -> Result<(), NetError> {
    let limits = inner.cfg.budget.session_limits_for(None, &inner.cfg.obs);
    let mut session = query.session(limits);
    let mut upload = Upload::new(inner);
    loop {
        let frame = read_frame(stream, inner.cfg.max_frame_len)?;
        match frame.kind {
            FrameKind::Chunk => {
                upload.admit_chunk(&frame.payload)?;
                if let Err(e) = session.feed(&frame.payload) {
                    return Err(drain_then_fail(inner, stream, NetError::Engine(e)));
                }
                if upload.checkpoint_due(frame.payload.len()) {
                    let _ = session.checkpoint();
                }
                let batch = session.drain_emitted();
                let start = session.emission_cursor().count - batch.len() as u64;
                write_frame(
                    stream,
                    FrameKind::MatchPart,
                    &encode_match_part(start, &batch),
                )
                .map_err(|e| match e {
                    FrameError::Timeout => NetError::WriteTimeout,
                    other => NetError::Frame(other),
                })?;
            }
            FrameKind::Finish => {
                require_empty_finish(&frame)?;
                let outcome = session.finish().map_err(NetError::Engine)?;
                let (fed, latency) = upload.finish();
                inner.o.request_bytes.record(fed);
                inner.o.request_latency_ms.record(latency);
                send_reply(
                    inner,
                    stream,
                    FrameKind::Matches,
                    &encode_matches_with_cursor(&outcome.matches, outcome.cursor),
                )?;
                return Ok(());
            }
            other => {
                return Err(NetError::Protocol {
                    detail: format!("unexpected {other:?} frame inside a request"),
                })
            }
        }
    }
}

fn serve_multi(
    inner: &NetInner,
    stream: &mut TcpStream,
    _conn: u64,
    set: &QuerySet,
) -> Result<(), NetError> {
    let limits = inner.cfg.budget.session_limits_for(None, &inner.cfg.obs);
    let mut session = set.session(limits);
    let mut upload = Upload::new(inner);
    loop {
        let frame = read_frame(stream, inner.cfg.max_frame_len)?;
        match frame.kind {
            FrameKind::Chunk => {
                upload.admit_chunk(&frame.payload)?;
                if let Err(e) = session.feed(&frame.payload) {
                    return Err(drain_then_fail(inner, stream, NetError::Engine(e)));
                }
                if upload.checkpoint_due(frame.payload.len()) {
                    let _ = session.checkpoint();
                }
            }
            FrameKind::Finish => {
                require_empty_finish(&frame)?;
                let outcome = session.finish().map_err(NetError::Engine)?;
                let (fed, latency) = upload.finish();
                inner.o.request_bytes.record(fed);
                inner.o.request_latency_ms.record(latency);
                send_reply(
                    inner,
                    stream,
                    FrameKind::MultiMatches,
                    &encode_multi_matches(&outcome.matches),
                )?;
                return Ok(());
            }
            other => {
                return Err(NetError::Protocol {
                    detail: format!("unexpected {other:?} frame inside a request"),
                })
            }
        }
    }
}

fn require_empty_finish(frame: &Frame) -> Result<(), NetError> {
    if frame.payload.is_empty() {
        Ok(())
    } else {
        Err(NetError::Frame(FrameError::BadPayload {
            detail: format!(
                "FINISH carries {} payload byte(s); it must be empty",
                frame.payload.len()
            ),
        }))
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A reply from the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetResponse {
    /// Document-order node ids of a single-query request.
    Matches(Vec<usize>),
    /// Per-member node ids of a multi-query request.
    MultiMatches(Vec<Vec<usize>>),
    /// The settled reply of a *streaming* request: the final match list,
    /// the concatenation of every incremental part received before it,
    /// and the server's emission cursor — already verified by the client
    /// to agree with both (count, digest, and node ids).
    StreamMatches {
        /// Document-order node ids (the end-of-document answer).
        ids: Vec<usize>,
        /// Every incrementally delivered match, in emission order.
        parts: Vec<StreamedMatch>,
        /// The server's final emission cursor.
        cursor: EmissionCursor,
    },
    /// A typed failure: a stable code from [`crate::error::codes`] plus
    /// an advisory message.
    ServerError {
        /// The stable wire code.
        code: u16,
        /// The human-readable detail.
        message: String,
    },
}

/// A small blocking client for the [`crate::frame`] protocol — what the
/// CLI, the integration tests, and the network chaos harness drive the
/// server with.  The low-level `send_*` methods expose each protocol
/// step; [`NetClient::stream_mut`] exposes the raw socket so the chaos
/// harness can tear frames and disconnect mid-stream.
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects and sends the preamble, with 10-second socket deadlines.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures, verbatim.
    pub fn connect(addr: &str) -> io::Result<NetClient> {
        NetClient::connect_with_timeouts(addr, Duration::from_secs(10), Duration::from_secs(10))
    }

    /// Connects with explicit socket deadlines.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures, verbatim.
    pub fn connect_with_timeouts(
        addr: &str,
        read: Duration,
        write: Duration,
    ) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read))?;
        stream.set_write_timeout(Some(write))?;
        stream.set_nodelay(true)?;
        let mut client = NetClient { stream };
        write_preamble(&mut client.stream).map_err(io::Error::other)?;
        Ok(client)
    }

    /// The raw socket, for tests that tear frames or disconnect.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Opens a single-query request.
    ///
    /// # Errors
    ///
    /// Transport failures as [`FrameError`].
    pub fn send_query(&mut self, pattern: &str, alphabet_csv: &str) -> Result<(), FrameError> {
        write_frame(
            &mut self.stream,
            FrameKind::Query,
            &encode_query(alphabet_csv, pattern),
        )
    }

    /// Opens a multi-query request.
    ///
    /// # Errors
    ///
    /// Transport failures as [`FrameError`].
    pub fn send_multi_query<S: AsRef<str>>(
        &mut self,
        patterns: &[S],
        alphabet_csv: &str,
    ) -> Result<(), FrameError> {
        write_frame(
            &mut self.stream,
            FrameKind::MultiQuery,
            &encode_multi_query(alphabet_csv, patterns),
        )
    }

    /// Streams one run of document bytes.
    ///
    /// # Errors
    ///
    /// Transport failures as [`FrameError`].
    pub fn send_chunk(&mut self, bytes: &[u8]) -> Result<(), FrameError> {
        write_frame(&mut self.stream, FrameKind::Chunk, bytes)
    }

    /// Closes the document.
    ///
    /// # Errors
    ///
    /// Transport failures as [`FrameError`].
    pub fn send_finish(&mut self) -> Result<(), FrameError> {
        write_frame(&mut self.stream, FrameKind::Finish, &[])
    }

    /// Reads the server's reply to the open request.
    ///
    /// # Errors
    ///
    /// Transport failures, or a reply frame that is not a valid
    /// response kind.
    pub fn read_response(&mut self) -> Result<NetResponse, FrameError> {
        let frame = read_frame(&mut self.stream, RESPONSE_MAX_FRAME_LEN)?;
        match frame.kind {
            FrameKind::Matches => Ok(NetResponse::Matches(decode_matches(&frame.payload)?)),
            FrameKind::MultiMatches => Ok(NetResponse::MultiMatches(decode_multi_matches(
                &frame.payload,
            )?)),
            FrameKind::Error => {
                let (code, message) = decode_error(&frame.payload)?;
                Ok(NetResponse::ServerError { code, message })
            }
            other => Err(FrameError::BadPayload {
                detail: format!("server sent a {other:?} frame as a reply"),
            }),
        }
    }

    /// Opens a streaming single-query request.
    ///
    /// # Errors
    ///
    /// Transport failures as [`FrameError`].
    pub fn send_stream_query(
        &mut self,
        pattern: &str,
        alphabet_csv: &str,
    ) -> Result<(), FrameError> {
        write_frame(
            &mut self.stream,
            FrameKind::StreamQuery,
            &encode_query(alphabet_csv, pattern),
        )
    }

    /// One full *streaming* round trip: stream-query, then for each
    /// `chunk`-byte document frame one `MatchPart` reply (handed to
    /// `on_part` as it arrives — this is the earliest-delivery surface),
    /// then finish and the final cursor-carrying reply.
    ///
    /// Before returning, the accumulated parts are verified against the
    /// server's final answer three ways: their node ids must equal the
    /// final match list, the parts must tile the stream exactly (each
    /// starting where the previous ended), and their FNV-1a digest must
    /// equal the server's cursor digest.  Any disagreement is a typed
    /// [`FrameError::BadPayload`] — a corrupted or reordered stream can
    /// never be silently accepted.
    ///
    /// # Errors
    ///
    /// Transport failures as [`FrameError`]; server-side failures come
    /// back as `Ok(NetResponse::ServerError { .. })`.
    pub fn stream_query(
        &mut self,
        pattern: &str,
        alphabet_csv: &str,
        doc: &[u8],
        chunk: usize,
        mut on_part: impl FnMut(&[StreamedMatch]),
    ) -> Result<NetResponse, FrameError> {
        self.send_stream_query(pattern, alphabet_csv)?;
        let mut parts: Vec<StreamedMatch> = Vec::new();
        for seg in doc.chunks(chunk.max(1)) {
            self.send_chunk(seg)?;
            // Lock step: exactly one reply per chunk, read before the
            // next chunk goes out, so neither side blocks on a full
            // socket buffer.
            let frame = read_frame(&mut self.stream, RESPONSE_MAX_FRAME_LEN)?;
            match frame.kind {
                FrameKind::MatchPart => {
                    let (start, batch) = decode_match_part(&frame.payload)?;
                    if start != parts.len() as u64 {
                        return Err(FrameError::BadPayload {
                            detail: format!(
                                "MATCH_PART starts at {start} but {} match(es) \
                                 were received so far",
                                parts.len()
                            ),
                        });
                    }
                    on_part(&batch);
                    parts.extend_from_slice(&batch);
                }
                FrameKind::Error => {
                    let (code, message) = decode_error(&frame.payload)?;
                    return Ok(NetResponse::ServerError { code, message });
                }
                other => {
                    return Err(FrameError::BadPayload {
                        detail: format!("server sent a {other:?} frame as a stream part"),
                    })
                }
            }
        }
        self.send_finish()?;
        let frame = read_frame(&mut self.stream, RESPONSE_MAX_FRAME_LEN)?;
        match frame.kind {
            FrameKind::Matches => {
                let (ids, cursor) = decode_matches_with_cursor(&frame.payload)?;
                let reference = EmissionCursor::over(&parts);
                if reference != cursor {
                    return Err(FrameError::BadPayload {
                        detail: format!(
                            "stream parts (count {}, digest {:#018x}) disagree with \
                             the final cursor (count {}, digest {:#018x})",
                            reference.count, reference.digest, cursor.count, cursor.digest
                        ),
                    });
                }
                if parts.iter().map(|m| m.node).ne(ids.iter().copied()) {
                    return Err(FrameError::BadPayload {
                        detail: "stream parts do not equal the final match list".to_owned(),
                    });
                }
                Ok(NetResponse::StreamMatches { ids, parts, cursor })
            }
            FrameKind::Error => {
                let (code, message) = decode_error(&frame.payload)?;
                Ok(NetResponse::ServerError { code, message })
            }
            other => Err(FrameError::BadPayload {
                detail: format!("server sent a {other:?} frame as a stream reply"),
            }),
        }
    }

    /// One full round trip: query, document in `chunk`-byte frames,
    /// finish, reply.
    ///
    /// # Errors
    ///
    /// Transport failures as [`FrameError`]; server-side failures come
    /// back as `Ok(NetResponse::ServerError { .. })`.
    pub fn query(
        &mut self,
        pattern: &str,
        alphabet_csv: &str,
        doc: &[u8],
        chunk: usize,
    ) -> Result<NetResponse, FrameError> {
        self.send_query(pattern, alphabet_csv)?;
        self.stream_doc_and_finish(doc, chunk)
    }

    /// One full multi-query round trip.
    ///
    /// # Errors
    ///
    /// As [`NetClient::query`].
    pub fn multi_query<S: AsRef<str>>(
        &mut self,
        patterns: &[S],
        alphabet_csv: &str,
        doc: &[u8],
        chunk: usize,
    ) -> Result<NetResponse, FrameError> {
        self.send_multi_query(patterns, alphabet_csv)?;
        self.stream_doc_and_finish(doc, chunk)
    }

    fn stream_doc_and_finish(
        &mut self,
        doc: &[u8],
        chunk: usize,
    ) -> Result<NetResponse, FrameError> {
        for seg in doc.chunks(chunk.max(1)) {
            self.send_chunk(seg)?;
        }
        self.send_finish()?;
        self.read_response()
    }
}
