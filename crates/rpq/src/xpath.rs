//! The downward-axis XPath subset.
//!
//! Grammar (the fragment the paper calls "XPath queries built up from
//! downward axes and label tests", Section 2.3):
//!
//! ```text
//! xpath := step+
//! step  := '/' test        (child axis)
//!        | '//' test       (descendant-or-self::node()/child)
//! test  := name | '*'
//! ```
//!
//! Semantics as a path regex over Γ: `/t` appends `t`, `//t` appends
//! `Γ* t`, `*` is the universal label test Γ.  `/a//b` thus becomes
//! `a Γ*b` — the first row of Example 2.12.

use st_automata::{Alphabet, Regex};

use crate::QueryError;

/// Parses a downward XPath into a path regex over Γ.
///
/// # Errors
///
/// [`QueryError::Parse`] on syntax errors, [`QueryError::UnknownLabel`]
/// for names outside Γ.
pub fn parse_xpath(expr: &str, alphabet: &Alphabet) -> Result<Regex, QueryError> {
    let bytes = expr.as_bytes();
    if bytes.is_empty() || bytes[0] != b'/' {
        return Err(QueryError::Parse {
            position: 0,
            message: "an XPath must start with '/' or '//'".into(),
        });
    }
    let mut parts: Vec<Regex> = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes[pos] != b'/' {
            return Err(QueryError::Parse {
                position: pos,
                message: "expected '/'".into(),
            });
        }
        pos += 1;
        let descendant = bytes.get(pos) == Some(&b'/');
        if descendant {
            pos += 1;
        }
        let start = pos;
        while pos < bytes.len() && bytes[pos] != b'/' {
            pos += 1;
        }
        let test = &expr[start..pos];
        if test.is_empty() {
            return Err(QueryError::Parse {
                position: start,
                message: "expected a name test or '*'".into(),
            });
        }
        let label = match test {
            "*" => Regex::any(alphabet),
            name => {
                let l = alphabet
                    .letter(name)
                    .ok_or_else(|| QueryError::UnknownLabel {
                        label: name.to_owned(),
                    })?;
                Regex::letter(l)
            }
        };
        if descendant {
            parts.push(Regex::any(alphabet).star());
        }
        parts.push(label);
    }
    Ok(Regex::Concat(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_automata::compile_regex;
    use st_automata::ops::equivalent;

    fn check(expr: &str, regex: &str) {
        let g = Alphabet::of_chars("abc");
        let x = parse_xpath(expr, &g).unwrap().to_min_dfa(&g);
        let r = compile_regex(regex, &g).unwrap();
        assert!(equivalent(&x, &r), "{expr} vs {regex}");
    }

    #[test]
    fn paper_examples() {
        check("/a//b", "a.*b");
        check("/a/b", "ab");
        check("//a//b", ".*a.*b");
        check("//a/b", ".*ab");
    }

    #[test]
    fn wildcards() {
        check("/*", ".");
        check("/a/*/b", "a.b");
        check("//*", ".*.");
    }

    #[test]
    fn errors() {
        let g = Alphabet::of_chars("abc");
        assert!(matches!(
            parse_xpath("a/b", &g),
            Err(QueryError::Parse { position: 0, .. })
        ));
        assert!(matches!(
            parse_xpath("/a//", &g),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse_xpath("/xyz", &g),
            Err(QueryError::UnknownLabel { .. })
        ));
        assert!(matches!(parse_xpath("", &g), Err(QueryError::Parse { .. })));
    }

    #[test]
    fn multi_character_names() {
        let g = Alphabet::from_symbols(["chapter", "section"]).unwrap();
        let x = parse_xpath("/chapter//section", &g).unwrap().to_min_dfa(&g);
        // chapter = 0, section = 1.
        assert!(x.accepts(&[0, 1]));
        assert!(x.accepts(&[0, 0, 1]));
        assert!(!x.accepts(&[1, 1]));
    }
}
