//! The downward JSONPath subset.
//!
//! Grammar (mirroring the paper's Example 2.12 spellings):
//!
//! ```text
//! jsonpath := '$' step+
//! step     := '.' test      (child)
//!           | '..' test     (descendant)
//! test     := name | '*'
//! ```
//!
//! `$.a..b` becomes the path regex `a Γ*b`, exactly like its XPath twin
//! `/a//b`.

use st_automata::{Alphabet, Regex};

use crate::QueryError;

/// Parses a downward JSONPath into a path regex over Γ.
///
/// # Errors
///
/// [`QueryError::Parse`] on syntax errors, [`QueryError::UnknownLabel`]
/// for names outside Γ.
pub fn parse_jsonpath(expr: &str, alphabet: &Alphabet) -> Result<Regex, QueryError> {
    let bytes = expr.as_bytes();
    if bytes.first() != Some(&b'$') {
        return Err(QueryError::Parse {
            position: 0,
            message: "a JSONPath must start with '$'".into(),
        });
    }
    let mut parts: Vec<Regex> = Vec::new();
    let mut pos = 1usize;
    if pos == bytes.len() {
        return Err(QueryError::Parse {
            position: pos,
            message: "expected at least one step".into(),
        });
    }
    while pos < bytes.len() {
        if bytes[pos] != b'.' {
            return Err(QueryError::Parse {
                position: pos,
                message: "expected '.'".into(),
            });
        }
        pos += 1;
        let descendant = bytes.get(pos) == Some(&b'.');
        if descendant {
            pos += 1;
        }
        let start = pos;
        while pos < bytes.len() && bytes[pos] != b'.' {
            pos += 1;
        }
        let test = &expr[start..pos];
        if test.is_empty() {
            return Err(QueryError::Parse {
                position: start,
                message: "expected a member name or '*'".into(),
            });
        }
        let label = match test {
            "*" => Regex::any(alphabet),
            name => {
                let l = alphabet
                    .letter(name)
                    .ok_or_else(|| QueryError::UnknownLabel {
                        label: name.to_owned(),
                    })?;
                Regex::letter(l)
            }
        };
        if descendant {
            parts.push(Regex::any(alphabet).star());
        }
        parts.push(label);
    }
    Ok(Regex::Concat(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_automata::compile_regex;
    use st_automata::ops::equivalent;

    fn check(expr: &str, regex: &str) {
        let g = Alphabet::of_chars("abc");
        let x = parse_jsonpath(expr, &g).unwrap().to_min_dfa(&g);
        let r = compile_regex(regex, &g).unwrap();
        assert!(equivalent(&x, &r), "{expr} vs {regex}");
    }

    #[test]
    fn paper_examples() {
        check("$.a..b", "a.*b");
        check("$.a.b", "ab");
        check("$..a..b", ".*a.*b");
        check("$..a.b", ".*ab");
    }

    #[test]
    fn wildcards() {
        check("$.*", ".");
        check("$.a.*.b", "a.b");
    }

    #[test]
    fn errors() {
        let g = Alphabet::of_chars("abc");
        assert!(matches!(
            parse_jsonpath(".a", &g),
            Err(QueryError::Parse { position: 0, .. })
        ));
        assert!(matches!(
            parse_jsonpath("$", &g),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse_jsonpath("$.a..", &g),
            Err(QueryError::Parse { .. })
        ));
        assert!(matches!(
            parse_jsonpath("$.nope", &g),
            Err(QueryError::UnknownLabel { .. })
        ));
    }
}
