//! Query surface: regular path queries in user syntax.
//!
//! The paper treats RPQs as the user-facing query class (Section 2.3):
//! "RPQs include all XPath queries built up from downward axes (child,
//! descendent) and label tests".  This crate parses three concrete
//! syntaxes into one [`PathQuery`]:
//!
//! * path regexes over Γ (the paper's own notation, via
//!   [`st_automata::regex`]),
//! * the downward-axis **XPath subset** — `/a//b/*` (Example 2.12's first
//!   row is `/a//b`),
//! * the downward **JSONPath subset** — `$.a..b.*` (the same row's
//!   `$.a..b`).
//!
//! A [`PathQuery`] owns the minimal automaton of its path language and the
//! full classification, and hands off to the `st-core` planner for
//! evaluation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod jsonpath;
pub mod xpath;

use st_automata::{Alphabet, Dfa, Regex};
use st_core::planner::CompiledQuery;
use st_core::CoreError;

pub use jsonpath::parse_jsonpath;
pub use xpath::parse_xpath;

/// Errors raised while parsing query syntaxes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Syntax error with byte position.
    Parse {
        /// Byte offset of the error.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// A label used in the query is not in Γ.
    UnknownLabel {
        /// The label as written.
        label: String,
    },
    /// Regex front-end error.
    Regex(st_automata::AutomataError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse { position, message } => {
                write!(f, "query parse error at byte {position}: {message}")
            }
            QueryError::UnknownLabel { label } => {
                write!(f, "label {label:?} is not in the alphabet")
            }
            QueryError::Regex(e) => write!(f, "regex error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<st_automata::AutomataError> for QueryError {
    fn from(e: st_automata::AutomataError) -> Self {
        QueryError::Regex(e)
    }
}

/// A regular path query: a path language L ⊆ Γ* with its minimal
/// automaton; selects the nodes whose root path spells a word of L.
///
/// ```
/// use st_automata::Alphabet;
/// use st_core::planner::Strategy;
/// use st_rpq::PathQuery;
///
/// let gamma = Alphabet::of_chars("abc");
/// let query = PathQuery::from_xpath("/a//b", &gamma).unwrap();
/// assert_eq!(query.plan().strategy(), Strategy::Registerless);
/// ```
#[derive(Clone, Debug)]
pub struct PathQuery {
    /// The alphabet Γ the query ranges over.
    pub alphabet: Alphabet,
    /// The query as written by the user (diagnostics).
    pub source: String,
    /// The canonical minimal automaton of L.
    pub dfa: Dfa,
}

impl PathQuery {
    /// Parses the paper's regex notation (see [`st_automata::regex`] for
    /// the syntax).
    ///
    /// # Errors
    ///
    /// Propagates regex parse errors.
    pub fn from_regex(pattern: &str, alphabet: &Alphabet) -> Result<PathQuery, QueryError> {
        let dfa = st_automata::compile_regex(pattern, alphabet)?;
        Ok(PathQuery {
            alphabet: alphabet.clone(),
            source: pattern.to_owned(),
            dfa,
        })
    }

    /// Parses the XPath subset (`/a//b/*`).
    ///
    /// # Errors
    ///
    /// [`QueryError::Parse`] on syntax errors, [`QueryError::UnknownLabel`]
    /// for labels outside Γ.
    pub fn from_xpath(expr: &str, alphabet: &Alphabet) -> Result<PathQuery, QueryError> {
        let regex = parse_xpath(expr, alphabet)?;
        Ok(PathQuery {
            alphabet: alphabet.clone(),
            source: expr.to_owned(),
            dfa: regex.to_min_dfa(alphabet),
        })
    }

    /// Parses the JSONPath subset (`$.a..b.*`).
    ///
    /// # Errors
    ///
    /// Same as [`Self::from_xpath`].
    pub fn from_jsonpath(expr: &str, alphabet: &Alphabet) -> Result<PathQuery, QueryError> {
        let regex = parse_jsonpath(expr, alphabet)?;
        Ok(PathQuery {
            alphabet: alphabet.clone(),
            source: expr.to_owned(),
            dfa: regex.to_min_dfa(alphabet),
        })
    }

    /// Compiles through the `st-core` planner: classification + cheapest
    /// evaluator.
    pub fn plan(&self) -> CompiledQuery {
        CompiledQuery::compile(&self.dfa)
    }

    /// Convenience: the raw regex AST of a downward XPath, exposed for
    /// tooling.
    ///
    /// # Errors
    ///
    /// Same as [`Self::from_xpath`].
    pub fn xpath_to_regex(expr: &str, alphabet: &Alphabet) -> Result<Regex, QueryError> {
        parse_xpath(expr, alphabet)
    }
}

/// Convenience re-export: classify a query end to end.
///
/// # Errors
///
/// Propagates planner compilation errors (none today — the stack fallback
/// is total; the signature leaves room for resource limits).
pub fn explain(query: &PathQuery) -> Result<st_core::classify::ClassReport, CoreError> {
    Ok(*query.plan().report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::planner::Strategy;

    #[test]
    fn example_2_12_spellings_agree() {
        // Each row of Example 2.12 in all three syntaxes compiles to the
        // same language.
        let g = Alphabet::of_chars("abc");
        let rows = [
            ("/a//b", "$.a..b", "a.*b"),
            ("/a/b", "$.a.b", "ab"),
            ("//a//b", "$..a..b", ".*a.*b"),
            ("//a/b", "$..a.b", ".*ab"),
        ];
        for (xp, jp, re) in rows {
            let q_x = PathQuery::from_xpath(xp, &g).unwrap();
            let q_j = PathQuery::from_jsonpath(jp, &g).unwrap();
            let q_r = PathQuery::from_regex(re, &g).unwrap();
            assert!(st_automata::ops::equivalent(&q_x.dfa, &q_r.dfa), "{xp}");
            assert!(st_automata::ops::equivalent(&q_j.dfa, &q_r.dfa), "{jp}");
        }
    }

    #[test]
    fn planner_integration() {
        let g = Alphabet::of_chars("abc");
        let q = PathQuery::from_xpath("/a//b", &g).unwrap();
        assert_eq!(q.plan().strategy(), Strategy::Registerless);
        let q = PathQuery::from_xpath("//a/b", &g).unwrap();
        assert_eq!(q.plan().strategy(), Strategy::Stack);
    }
}
