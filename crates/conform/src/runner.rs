//! The fuzzing loop: generate, run, shrink, persist.

use std::path::PathBuf;

use crate::corpus;
use crate::engines::{run_case, Mutation};
use crate::gen::{case_rng, gen_case, Case, GenConfig};
use crate::shrink::shrink;

/// Configuration for one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed; each iteration derives its own stream from
    /// `(seed, iter)` so corpus filenames are self-describing.
    pub seed: u64,
    /// Number of cases to generate.
    pub iters: u64,
    /// Generator tunables.
    pub gen: GenConfig,
    /// Where to persist shrunk reproducers; `None` disables persistence.
    pub corpus_dir: Option<PathBuf>,
    /// Injected engine fault ([`Mutation::None`] for production).
    pub mutation: Mutation,
    /// Stop after this many divergences (0 means run all iterations).
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iters: 1000,
            gen: GenConfig::default(),
            corpus_dir: None,
            mutation: Mutation::None,
            max_failures: 5,
        }
    }
}

/// One divergence found by the loop, before and after shrinking.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Iteration that produced the case (regenerate with
    /// [`case_rng`]`(seed, iter)`).
    pub iter: u64,
    /// The generated input.
    pub case: Case,
    /// The delta-debugged minimal reproducer.
    pub shrunk: Case,
    /// Human-readable description of the first disagreement.
    pub detail: String,
    /// Corpus file written, when persistence is on.
    pub corpus_path: Option<PathBuf>,
}

/// Aggregate statistics of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations actually executed.
    pub iters_run: u64,
    /// Cases whose documents tokenized.
    pub tokenizable: u64,
    /// Cases whose documents decoded to well-formed trees.
    pub well_formed: u64,
    /// All divergences found.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True when no divergence was found.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the differential fuzzing loop described in the crate docs.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for iter in 0..cfg.iters {
        let mut rng = case_rng(cfg.seed, iter);
        let (case, pat) = gen_case(&mut rng, &cfg.gen);
        let outcome = run_case(&case, cfg.mutation);
        report.iters_run += 1;
        report.tokenizable += outcome.tokenizable as u64;
        report.well_formed += outcome.well_formed as u64;
        let Some(div) = outcome.divergence else {
            continue;
        };
        let shrunk = shrink(&case, Some(&pat), cfg.mutation);
        let detail = div.to_string();
        let corpus_path = cfg.corpus_dir.as_ref().and_then(|dir| {
            corpus::write_entry(dir, &corpus::entry_name(cfg.seed, iter), &shrunk, &detail).ok()
        });
        report.failures.push(FuzzFailure {
            iter,
            case,
            shrunk,
            detail,
            corpus_path,
        });
        if cfg.max_failures > 0 && report.failures.len() >= cfg.max_failures {
            break;
        }
    }
    report
}

/// Replays every corpus entry under `dir` with production engines;
/// returns the diverging entries (path, divergence description).
pub fn replay_corpus(dir: &std::path::Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut bad = Vec::new();
    for (path, case) in corpus::load_corpus(dir)? {
        if let Some(div) = run_case(&case, Mutation::None).divergence {
            bad.push((path, div.to_string()));
        }
    }
    Ok(bad)
}
