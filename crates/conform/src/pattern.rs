//! Random RPQ patterns as a shrinkable AST.
//!
//! The fuzzer generates patterns structurally, keeps the AST around for
//! delta-debugging, and renders to the `compile_regex` surface syntax
//! (single-char letters, `.`, `[..]`, `[^..]`, `|`, `*`, `+`, `?`,
//! parentheses) only at the boundary.  The rendered string is the
//! replayable, corpus-persisted form.

use rand::prelude::*;

/// A regular-expression pattern over single-character labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pat {
    /// One letter of the alphabet.
    Letter(char),
    /// The wildcard `.` (any letter).
    Any,
    /// Character class `[..]`; the flag marks negation (`[^..]`).
    Class(Vec<char>, bool),
    /// Concatenation of one or more factors.
    Concat(Vec<Pat>),
    /// Alternation of two or more arms.
    Alt(Vec<Pat>),
    /// Kleene star.
    Star(Box<Pat>),
    /// One-or-more.
    Plus(Box<Pat>),
    /// Zero-or-one.
    Opt(Box<Pat>),
}

impl Pat {
    /// Renders to `compile_regex` syntax.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Pat::Letter(c) => out.push(*c),
            Pat::Any => out.push('.'),
            Pat::Class(cs, neg) => {
                out.push('[');
                if *neg {
                    out.push('^');
                }
                for c in cs {
                    out.push(*c);
                }
                out.push(']');
            }
            Pat::Concat(ps) => {
                for p in ps {
                    p.write_atomic(out);
                }
            }
            Pat::Alt(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        out.push('|');
                    }
                    p.write(out);
                }
            }
            Pat::Star(p) => {
                p.write_atomic(out);
                out.push('*');
            }
            Pat::Plus(p) => {
                p.write_atomic(out);
                out.push('+');
            }
            Pat::Opt(p) => {
                p.write_atomic(out);
                out.push('?');
            }
        }
    }

    /// Writes `self` parenthesized unless it already binds tightest.
    fn write_atomic(&self, out: &mut String) {
        match self {
            Pat::Letter(_) | Pat::Any | Pat::Class(..) => self.write(out),
            _ => {
                out.push('(');
                self.write(out);
                out.push(')');
            }
        }
    }

    /// Complexity weight (letters are simplest, classes heaviest among
    /// leaves); the shrinker only accepts strictly smaller candidates,
    /// which guarantees termination.
    pub fn size(&self) -> usize {
        match self {
            Pat::Letter(_) => 1,
            Pat::Any => 2,
            Pat::Class(cs, _) => 2 + cs.len(),
            Pat::Concat(ps) | Pat::Alt(ps) => 1 + ps.iter().map(Pat::size).sum::<usize>(),
            Pat::Star(p) | Pat::Plus(p) | Pat::Opt(p) => 1 + p.size(),
        }
    }

    /// Draws a random pattern of bounded height over `chars`.
    pub fn random(rng: &mut StdRng, chars: &[char], depth: usize) -> Pat {
        if depth == 0 || rng.gen_bool(0.4) {
            return Pat::random_leaf(rng, chars);
        }
        match rng.gen_range(0u8..6) {
            0 => Pat::Star(Box::new(Pat::random(rng, chars, depth - 1))),
            1 => Pat::Plus(Box::new(Pat::random(rng, chars, depth - 1))),
            2 => Pat::Opt(Box::new(Pat::random(rng, chars, depth - 1))),
            3 => {
                let n = rng.gen_range(2usize..=3);
                Pat::Alt((0..n).map(|_| Pat::random(rng, chars, depth - 1)).collect())
            }
            _ => {
                let n = rng.gen_range(2usize..=4);
                Pat::Concat((0..n).map(|_| Pat::random(rng, chars, depth - 1)).collect())
            }
        }
    }

    fn random_leaf(rng: &mut StdRng, chars: &[char]) -> Pat {
        match rng.gen_range(0u8..6) {
            0 => Pat::Any,
            1 if chars.len() >= 2 => {
                // A proper nonempty subset keeps negated classes nonempty.
                let keep = rng.gen_range(1..chars.len());
                let start = rng.gen_range(0..chars.len());
                let cs: Vec<char> = (0..keep)
                    .map(|i| chars[(start + i) % chars.len()])
                    .collect();
                Pat::Class(cs, rng.gen_bool(0.35))
            }
            _ => Pat::Letter(chars[rng.gen_range(0..chars.len())]),
        }
    }

    /// Strictly simpler candidate patterns for delta-debugging: every
    /// immediate subterm, container-with-one-child-removed variants, and
    /// one-level recursive rewrites.
    pub fn shrink_candidates(&self) -> Vec<Pat> {
        let mut out = Vec::new();
        match self {
            Pat::Letter(_) => {}
            Pat::Any => out.push(Pat::Letter('a')),
            Pat::Class(cs, neg) => {
                if let Some(&c) = cs.first() {
                    if !neg {
                        out.push(Pat::Letter(c));
                    }
                }
                if *neg {
                    out.push(Pat::Any);
                }
            }
            Pat::Concat(ps) | Pat::Alt(ps) => {
                let alt = matches!(self, Pat::Alt(_));
                for p in ps {
                    out.push(p.clone());
                }
                if ps.len() > 2 || (!alt && ps.len() > 1) {
                    for i in 0..ps.len() {
                        let mut rest = ps.clone();
                        rest.remove(i);
                        out.push(if rest.len() == 1 {
                            rest.pop().expect("nonempty")
                        } else if alt {
                            Pat::Alt(rest)
                        } else {
                            Pat::Concat(rest)
                        });
                    }
                }
                for i in 0..ps.len() {
                    for cand in ps[i].shrink_candidates() {
                        let mut next = ps.clone();
                        next[i] = cand;
                        out.push(if alt {
                            Pat::Alt(next)
                        } else {
                            Pat::Concat(next)
                        });
                    }
                }
            }
            Pat::Star(p) | Pat::Plus(p) | Pat::Opt(p) => {
                out.push((**p).clone());
                for cand in p.shrink_candidates() {
                    out.push(match self {
                        Pat::Star(_) => Pat::Star(Box::new(cand)),
                        Pat::Plus(_) => Pat::Plus(Box::new(cand)),
                        _ => Pat::Opt(Box::new(cand)),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use st_automata::{compile_regex, Alphabet};

    #[test]
    fn random_patterns_compile() {
        let g = Alphabet::of_chars("abc");
        let chars: Vec<char> = "abc".chars().collect();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let p = Pat::random(&mut rng, &chars, 3);
            let rendered = p.render();
            assert!(
                compile_regex(&rendered, &g).is_ok(),
                "pattern {rendered:?} failed to compile"
            );
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let chars: Vec<char> = "ab".chars().collect();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let p = Pat::random(&mut rng, &chars, 3);
            for c in p.shrink_candidates() {
                assert!(c.size() < p.size(), "{c:?} not smaller than {p:?}");
            }
        }
    }
}
