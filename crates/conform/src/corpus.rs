//! Persistent reproducer corpus under `testdata/corpus/`.
//!
//! Each entry is a small, line-oriented text file holding one shrunk
//! [`Case`] plus free-form commentary.  The filename records the fuzzing
//! stream that found it — `seed<SEED>-i<ITER>.case` — so the *unshrunk*
//! input can be regenerated from the name alone via
//! [`crate::gen::case_rng`].  A tier-1 test replays every entry through
//! the full oracle on every run.
//!
//! Format (order fixed, one `key: value` per line, `#` comments allowed
//! at the top):
//!
//! ```text
//! # free commentary
//! pattern: a.*b
//! alphabet: ab
//! chunks: 1,7
//! doc-hex: 3c613e3c622f3e3c2f613e
//! note: what diverged when this was found
//! ```
//!
//! `doc-hex` may repeat; the payload is the concatenation, so long
//! documents wrap.  `chunks:` and `note:` may be empty.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::gen::Case;
use crate::multi::MultiCase;

/// Canonical corpus entry filename for a divergence found by fuzzing
/// stream `seed` at iteration `iter`.
pub fn entry_name(seed: u64, iter: u64) -> String {
    format!("seed{seed}-i{iter}.case")
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_owned());
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|e| format!("bad hex at {}: {e}", 2 * i))
        })
        .collect()
}

/// Serializes a case to the corpus text format.
pub fn render_entry(case: &Case, note: &str) -> String {
    let mut out = String::new();
    out.push_str("# st-conform reproducer; replay with `stql fuzz --replay <this file>`\n");
    out.push_str("# or regenerate the unshrunk input from the filename seed/iteration\n");
    out.push_str(&format!("pattern: {}\n", case.pattern));
    out.push_str(&format!("alphabet: {}\n", case.alphabet));
    out.push_str(&format!(
        "chunks: {}\n",
        case.chunk_sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    let h = hex(&case.doc);
    if h.is_empty() {
        out.push_str("doc-hex:\n");
    } else {
        for line in h.as_bytes().chunks(96) {
            out.push_str("doc-hex: ");
            out.push_str(std::str::from_utf8(line).expect("hex is ascii"));
            out.push('\n');
        }
    }
    out.push_str(&format!("note: {}\n", note.replace('\n', " ")));
    out
}

/// Parses the corpus text format back into a case.
pub fn parse_entry(text: &str) -> Result<Case, String> {
    let mut pattern = None;
    let mut alphabet = None;
    let mut chunks: Vec<usize> = Vec::new();
    let mut doc_hex = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected `key: value`", lineno + 1))?;
        let value = value.trim();
        match key.trim() {
            "pattern" => pattern = Some(value.to_owned()),
            "alphabet" => alphabet = Some(value.to_owned()),
            "chunks" => {
                for part in value.split(',').filter(|p| !p.trim().is_empty()) {
                    chunks.push(
                        part.trim()
                            .parse()
                            .map_err(|e| format!("line {}: bad chunk size: {e}", lineno + 1))?,
                    );
                }
            }
            "doc-hex" => doc_hex.push_str(value),
            "note" => {}
            other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
        }
    }
    Ok(Case {
        pattern: pattern.ok_or("missing pattern")?,
        alphabet: alphabet.ok_or("missing alphabet")?,
        doc: unhex(&doc_hex)?,
        chunk_sizes: chunks,
    })
}

/// Canonical multi-query corpus entry filename for a divergence found
/// by fuzzing stream `seed` at iteration `iter`.
pub fn multi_entry_name(seed: u64, iter: u64) -> String {
    format!("seed{seed}-i{iter}.mcase")
}

/// Serializes a multi-query case to the corpus text format: same shape
/// as the single-query format, with one `pattern:` line per query (the
/// per-query result order is the line order).
pub fn render_multi_entry(case: &MultiCase, note: &str) -> String {
    let mut out = String::new();
    out.push_str("# st-conform multi-query reproducer; replay with `stql fuzz --multi --replay <this file>`\n");
    for p in &case.patterns {
        out.push_str(&format!("pattern: {p}\n"));
    }
    out.push_str(&format!("alphabet: {}\n", case.alphabet));
    let h = hex(&case.doc);
    if h.is_empty() {
        out.push_str("doc-hex:\n");
    } else {
        for line in h.as_bytes().chunks(96) {
            out.push_str("doc-hex: ");
            out.push_str(std::str::from_utf8(line).expect("hex is ascii"));
            out.push('\n');
        }
    }
    out.push_str(&format!("note: {}\n", note.replace('\n', " ")));
    out
}

/// Parses the multi-query corpus text format back into a case.
pub fn parse_multi_entry(text: &str) -> Result<MultiCase, String> {
    let mut patterns = Vec::new();
    let mut alphabet = None;
    let mut doc_hex = String::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected `key: value`", lineno + 1))?;
        let value = value.trim();
        match key.trim() {
            "pattern" => patterns.push(value.to_owned()),
            "alphabet" => alphabet = Some(value.to_owned()),
            "doc-hex" => doc_hex.push_str(value),
            "note" => {}
            other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
        }
    }
    if patterns.is_empty() {
        return Err("missing pattern lines".to_owned());
    }
    Ok(MultiCase {
        patterns,
        alphabet: alphabet.ok_or("missing alphabet")?,
        doc: unhex(&doc_hex)?,
    })
}

/// Writes one multi-query entry, creating the corpus directory if
/// needed.  Returns the path written.
pub fn write_multi_entry(
    dir: &Path,
    name: &str,
    case: &MultiCase,
    note: &str,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, render_multi_entry(case, note))?;
    Ok(path)
}

/// Loads every `*.mcase` file under `dir`, sorted by filename.  Missing
/// directory means empty corpus.
pub fn load_multi_corpus(dir: &Path) -> Result<Vec<(PathBuf, MultiCase)>, String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "mcase"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text =
                fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let case = parse_multi_entry(&text).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((p, case))
        })
        .collect()
}

/// Writes one entry, creating the corpus directory if needed.  Returns
/// the path written.
pub fn write_entry(dir: &Path, name: &str, case: &Case, note: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, render_entry(case, note))?;
    Ok(path)
}

/// Loads every `*.case` file under `dir`, sorted by filename for
/// deterministic replay order.  Missing directory means empty corpus.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, Case)>, String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text =
                fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let case = parse_entry(&text).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((p, case))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrips() {
        let case = Case {
            pattern: "a(a|b)*b".to_owned(),
            alphabet: "ab".to_owned(),
            doc: b"<a><b/></a>".to_vec(),
            chunk_sizes: vec![1, 7],
        };
        let text = render_entry(&case, "fused vs chunked(1)\nmulti-line");
        let back = parse_entry(&text).expect("roundtrip parse");
        assert_eq!(back, case);
    }

    #[test]
    fn long_documents_wrap_and_roundtrip() {
        let case = Case {
            pattern: ".*a".to_owned(),
            alphabet: "abc".to_owned(),
            doc: b"<a>".iter().cycle().take(900).copied().collect(),
            chunk_sizes: vec![],
        };
        let text = render_entry(&case, "");
        assert!(text.lines().filter(|l| l.starts_with("doc-hex")).count() > 1);
        assert_eq!(parse_entry(&text).expect("parse"), case);
    }
}
