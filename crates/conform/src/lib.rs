//! Differential conformance harness for the stackless streamed-trees
//! reproduction.
//!
//! The paper's central claims are *equivalences between constructions*
//! (Theorems 3.1/3.2, Lemmas 3.5/3.8/3.11): the registerless DFA, the
//! depth-register program, and the classical pushdown evaluator all
//! compute the same query, and the fused byte engine computes the same
//! answers straight from raw XML.  This crate turns those equivalences
//! into an executable oracle:
//!
//! * [`gen`] — a deterministic, seed-reproducible, structure-aware case
//!   generator biased toward deep chains, wide fans, the Lemma 3.12
//!   fooling shapes, decorated/malformed-adjacent documents, and
//!   near-boundary chunk sizes;
//! * [`engines`] — runs every evaluation path (DOM oracle, stack
//!   baseline, event plan, fused byte engine, chunked data-parallel at
//!   several cut vectors) on one case and cross-checks match sets,
//!   boolean verdicts, and error classes;
//! * [`mod@shrink`] — delta-debugs any divergence to a minimal reproducer
//!   (subtree deletion/promotion, byte windows, chunk list, pattern AST);
//! * [`corpus`] — persists shrunk reproducers under `testdata/corpus/`
//!   in a text format whose filename alone regenerates the original
//!   fuzzing stream;
//! * [`runner`] — the generate → run → shrink → persist loop, exposed to
//!   the CLI as `stql fuzz` and replayed from the corpus by a tier-1
//!   test on every run;
//! * [`multi`] — the multi-query oracle: every 2–8 pattern set evaluated
//!   by one shared [`st_core::QuerySet`] pass must agree bitwise with N
//!   independent single-query runs, on both the product-DFA tier and the
//!   lane fallback (state-budget knob), indexed and forced-scalar alike.
//!
//! Deliberate engine faults ([`engines::Mutation`]) let the harness test
//! itself: a fault must be caught *and* shrunk to a small reproducer,
//! otherwise the oracle has a blind spot.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod corpus;
pub mod engines;
pub mod gen;
pub mod multi;
pub mod pattern;
pub mod runner;
pub mod shrink;
pub mod stream;

pub use engines::{resume_support, run_case, CaseOutcome, Divergence, EngineId, Mutation, Outcome};
pub use gen::{Case, GenConfig};
pub use multi::{
    fuzz_multi, gen_multi_case, replay_multi_corpus, run_multi_case, shrink_multi, MultiCase,
    MultiFuzzFailure, MultiFuzzReport, MultiMutation,
};
pub use pattern::Pat;
pub use runner::{fuzz, replay_corpus, FuzzConfig, FuzzFailure, FuzzReport};
pub use shrink::{shrink, tree_nodes};
pub use stream::{
    fuzz_stream, replay_stream_corpus, run_stream_case, shrink_stream, StreamFuzzFailure,
    StreamFuzzReport, StreamMutation,
};
