//! The streaming-emission oracle: `stql fuzz --stream`.
//!
//! A streamed consumer sees matches as the certainty frontier advances,
//! not when the document ends.  This module pins what that stream is
//! allowed to look like, differentially, on generated cases:
//!
//! * **Order and identity** — on a successful run, the drained stream's
//!   node ids must equal the collect-at-end match list exactly, and the
//!   DOM oracle's selection when the document is well-formed.  Streaming
//!   is an earlier *view* of the same answer, never a different one.
//! * **Offsets** — deciding byte offsets are strictly increasing (every
//!   match is decided at a distinct open event, in document order).
//! * **Cursor** — the engine's emission cursor must equal an independent
//!   FNV-1a fold over the delivered stream, for every chunking.
//! * **Chunking independence** — any chunk size yields the same stream.
//! * **Indexed/scalar twin** — the forced-scalar byte path delivers a
//!   bitwise-identical stream, and on malformed documents the two twins
//!   fail identically with identical delivered prefixes.
//!
//! Like the other oracles, the loop can inject deliberate faults
//! ([`StreamMutation`]) to prove it catches and shrinks real bugs, and
//! persists shrunk reproducers as ordinary `.case` corpus entries.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use st_automata::{compile_regex, Alphabet};
use st_baseline::dom;
use st_core::emit::{EmissionCursor, StreamedMatch};
use st_core::prelude::{Limits, Query};
use st_trees::encode::markup_decode;
use st_trees::xml::Scanner;

use crate::corpus;
use crate::engines::cuts_for;
use crate::gen::{case_rng, gen_case, Case};
use crate::pattern::Pat;
use crate::runner::FuzzConfig;

/// Deliberate fault injected into the streamed path so the oracle can
/// prove it catches real emission bugs; [`StreamMutation::None`] in
/// production.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamMutation {
    /// Production behaviour.
    None,
    /// Silently drop the first delivered match — the classic
    /// "lost emission" failure a crash between emit and ack causes.
    DropFirstEmission,
    /// Corrupt the first delivered offset — a frontier that lies about
    /// *when* a match became certain.
    SkewFirstOffset,
}

/// A streamed run's view: the drained emission sequence, plus the
/// terminal outcome (final match list and cursor) or the error that
/// ended the stream.
type StreamView = (
    Vec<StreamedMatch>,
    Result<(Vec<usize>, EmissionCursor), String>,
);

/// One streamed run of `fused` over `doc`, cut every `chunk` bytes:
/// drains after every feed, so the emitted sequence is exactly what a
/// consumer polling the session would have been handed.
fn streamed_run(fused: &st_core::prelude::FusedQuery, doc: &[u8], chunk: usize) -> StreamView {
    let mut session = fused.session(Limits::none());
    let mut emitted = Vec::new();
    let mut prev = 0usize;
    for cut in cuts_for(chunk, doc.len()) {
        if let Err(e) = session.feed(&doc[prev..cut]) {
            return (emitted, Err(format!("{e:?}")));
        }
        emitted.extend(session.drain_emitted());
        prev = cut;
    }
    if let Err(e) = session.feed(&doc[prev..]) {
        return (emitted, Err(format!("{e:?}")));
    }
    emitted.extend(session.drain_emitted());
    match session.finish() {
        Ok(out) => (emitted, Ok((out.matches, out.cursor))),
        Err(e) => (emitted, Err(format!("{e:?}"))),
    }
}

/// Runs one case through the streamed path at every chunk size, indexed
/// and forced-scalar, and cross-checks against the collect-at-end run
/// and the DOM oracle.  Returns the first disagreement, or `None` when
/// every view concurs (or the case is inert, e.g. the pattern no longer
/// compiles after shrinking).
pub fn run_stream_case(case: &Case, mutation: StreamMutation) -> Option<String> {
    let g = Alphabet::of_chars(&case.alphabet);
    let dfa = compile_regex(&case.pattern, &g).ok()?;
    // DOM oracle selection, available when the document scans and
    // decodes to a well-formed tree the oracle accepts.
    let dom_ref: Option<Vec<usize>> = Scanner::new(&case.doc, &g)
        .collect::<Result<Vec<_>, _>>()
        .ok()
        .filter(|tags| markup_decode(tags).is_ok())
        .and_then(|tags| dom::evaluate(&dfa, &tags).ok())
        .map(|r| r.selected);

    let mut chunks: Vec<usize> = case.chunk_sizes.clone();
    chunks.push(case.doc.len().max(1));
    let mut reference: Option<StreamView> = None;
    for force_scalar in [false, true] {
        let query = match Query::from_dfa(&dfa, &g) {
            Ok(q) => {
                if force_scalar {
                    q.with_force_scalar(true)
                } else {
                    q
                }
            }
            Err(_) => return None, // composite table over budget: inert
        };
        let fused = query.fused();
        for &s in &chunks {
            let variant = format!(
                "chunk {s} {}",
                if force_scalar { "scalar" } else { "indexed" }
            );
            let run = catch_unwind(AssertUnwindSafe(|| streamed_run(fused, &case.doc, s)));
            let (mut emitted, end) = match run {
                Ok(r) => r,
                Err(_) => return Some(format!("[{variant}] streamed run panicked")),
            };
            match mutation {
                StreamMutation::None => {}
                StreamMutation::DropFirstEmission => {
                    if !emitted.is_empty() {
                        emitted.remove(0);
                    }
                }
                StreamMutation::SkewFirstOffset => {
                    if let Some(first) = emitted.first_mut() {
                        first.offset += 1;
                    }
                }
            }
            if let Some(w) = emitted.windows(2).find(|w| w[0].offset >= w[1].offset) {
                return Some(format!(
                    "[{variant}] deciding offsets not strictly increasing: \
                     {} then {}",
                    w[0].offset, w[1].offset
                ));
            }
            match &end {
                Ok((matches, cursor)) => {
                    let ids: Vec<usize> = emitted.iter().map(|m| m.node).collect();
                    if &ids != matches {
                        return Some(format!(
                            "[{variant}] streamed {ids:?} vs collect-at-end {matches:?}"
                        ));
                    }
                    if &EmissionCursor::over(&emitted) != cursor {
                        return Some(format!(
                            "[{variant}] cursor does not fold the delivered stream \
                             (count {}, claimed {})",
                            emitted.len(),
                            cursor.count
                        ));
                    }
                    if let Some(want) = &dom_ref {
                        if &ids != want {
                            return Some(format!(
                                "[{variant}] streamed {ids:?} vs DOM oracle {want:?}"
                            ));
                        }
                    }
                }
                Err(_) => {
                    // A failed run's stream is still a *stream*: ordered,
                    // offset-monotone (checked above), and whatever was
                    // delivered stays delivered.  Cross-twin equality is
                    // checked against the indexed reference below.
                }
            }
            match &reference {
                None => reference = Some((emitted, end)),
                Some((ref_emitted, ref_end)) => {
                    // Chunking and the indexed/scalar choice may change
                    // *when* the frontier advances, never what crossed it
                    // by the end: the total stream and terminal outcome
                    // are invariant.
                    if ref_end.is_ok() || end.is_ok() {
                        if &emitted != ref_emitted {
                            return Some(format!(
                                "[{variant}] delivered stream {emitted:?} \
                                 vs reference {ref_emitted:?}"
                            ));
                        }
                        if &end != ref_end {
                            return Some(format!(
                                "[{variant}] terminal outcome {end:?} \
                                 vs reference {ref_end:?}"
                            ));
                        }
                    } else {
                        // Both runs failed: smaller chunks flush more
                        // windows before the failing one, so the shorter
                        // stream must be a prefix of the longer.
                        let (short, long) = if emitted.len() <= ref_emitted.len() {
                            (&emitted, ref_emitted)
                        } else {
                            (ref_emitted, &emitted)
                        };
                        if long[..short.len()] != short[..] {
                            return Some(format!(
                                "[{variant}] failed-run stream {emitted:?} is not \
                                 prefix-compatible with reference {ref_emitted:?}"
                            ));
                        }
                    }
                }
            }
        }
    }
    None
}

/// Minimizes a diverging stream case while it keeps diverging: byte
/// windows, chunk-size list, then the pattern AST when available.
pub fn shrink_stream(case: &Case, pat: Option<&Pat>, mutation: StreamMutation) -> Case {
    let mut budget = 600usize;
    let diverges = |c: &Case, budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        run_stream_case(c, mutation).is_some()
    };
    if !diverges(case, &mut budget) {
        return case.clone();
    }
    let mut best = case.clone();
    let mut cur_pat: Option<Pat> = pat.cloned();
    loop {
        let mut any = false;
        // Axis 1: byte-window deletion at halving granularity.
        let mut w = best.doc.len() / 2;
        while w >= 1 && budget > 0 {
            let mut at = 0usize;
            while at + w <= best.doc.len() && budget > 0 {
                let mut cand = best.clone();
                cand.doc.drain(at..at + w);
                if diverges(&cand, &mut budget) {
                    best = cand;
                    any = true;
                } else {
                    at += w;
                }
            }
            w /= 2;
        }
        // Axis 2: drop chunk sizes.
        let mut i = 0usize;
        while best.chunk_sizes.len() > 1 && i < best.chunk_sizes.len() && budget > 0 {
            let mut cand = best.clone();
            cand.chunk_sizes.remove(i);
            if diverges(&cand, &mut budget) {
                best = cand;
                any = true;
            } else {
                i += 1;
            }
        }
        // Axis 3: structural shrink of the pattern AST.
        if let Some(p) = cur_pat.as_mut() {
            let g = Alphabet::of_chars(&best.alphabet);
            let mut progress = true;
            while progress && budget > 0 {
                progress = false;
                for cand_pat in p.shrink_candidates() {
                    let rendered = cand_pat.render();
                    if compile_regex(&rendered, &g).is_err() {
                        continue;
                    }
                    let mut cand = best.clone();
                    cand.pattern = rendered;
                    if diverges(&cand, &mut budget) {
                        best = cand;
                        *p = cand_pat;
                        any = true;
                        progress = true;
                        break;
                    }
                }
            }
        }
        if !any || budget == 0 {
            break;
        }
    }
    best
}

/// One divergence found by the streaming loop.
#[derive(Clone, Debug)]
pub struct StreamFuzzFailure {
    /// Iteration that produced the case.
    pub iter: u64,
    /// The generated input.
    pub case: Case,
    /// The delta-debugged minimal reproducer.
    pub shrunk: Case,
    /// First disagreement, human-readable.
    pub detail: String,
    /// Corpus file written, when persistence is on.
    pub corpus_path: Option<PathBuf>,
}

/// Aggregate statistics of a `fuzz --stream` run.
#[derive(Clone, Debug, Default)]
pub struct StreamFuzzReport {
    /// Iterations actually executed.
    pub iters_run: u64,
    /// All divergences found.
    pub failures: Vec<StreamFuzzFailure>,
}

impl StreamFuzzReport {
    /// True when no divergence was found.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The `fuzz --stream` loop: generate, run the streaming oracle, shrink,
/// persist as an ordinary `.case` corpus entry (replayable with
/// `stql fuzz --stream --replay`).
pub fn fuzz_stream(cfg: &FuzzConfig, mutation: StreamMutation) -> StreamFuzzReport {
    let mut report = StreamFuzzReport::default();
    for iter in 0..cfg.iters {
        let mut rng = case_rng(cfg.seed, iter);
        let (case, pat) = gen_case(&mut rng, &cfg.gen);
        report.iters_run += 1;
        let Some(detail) = run_stream_case(&case, mutation) else {
            continue;
        };
        let shrunk = shrink_stream(&case, Some(&pat), mutation);
        let corpus_path = cfg.corpus_dir.as_ref().and_then(|dir| {
            corpus::write_entry(dir, &corpus::entry_name(cfg.seed, iter), &shrunk, &detail).ok()
        });
        report.failures.push(StreamFuzzFailure {
            iter,
            case,
            shrunk,
            detail,
            corpus_path,
        });
        if cfg.max_failures > 0 && report.failures.len() >= cfg.max_failures {
            break;
        }
    }
    report
}

/// Replays every `.case` entry under `dir` through the streaming oracle;
/// returns the diverging entries.  Pinned reproducers found by *any*
/// loop must also stream cleanly — an emission bug on a known-hard input
/// is exactly what this net exists to catch.
pub fn replay_stream_corpus(dir: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut bad = Vec::new();
    for (path, case) in corpus::load_corpus(dir)? {
        if let Some(detail) = run_stream_case(&case, StreamMutation::None) {
            bad.push((path, detail));
        }
    }
    Ok(bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_case() -> Case {
        let mut doc = Vec::new();
        for _ in 0..6 {
            doc.extend_from_slice(b"<a><b></b></a>");
        }
        Case {
            pattern: "a.*b".to_owned(),
            alphabet: "ab".to_owned(),
            doc,
            chunk_sizes: vec![1, 5, 9],
        }
    }

    #[test]
    fn clean_case_streams_without_divergence() {
        assert_eq!(run_stream_case(&demo_case(), StreamMutation::None), None);
    }

    #[test]
    fn injected_faults_are_caught_and_shrunk() {
        for mutation in [
            StreamMutation::DropFirstEmission,
            StreamMutation::SkewFirstOffset,
        ] {
            let case = demo_case();
            let detail = run_stream_case(&case, mutation)
                .unwrap_or_else(|| panic!("{mutation:?} must diverge"));
            assert!(!detail.is_empty());
            let shrunk = shrink_stream(&case, None, mutation);
            assert!(
                run_stream_case(&shrunk, mutation).is_some(),
                "{mutation:?}: shrunk case no longer reproduces"
            );
            assert!(shrunk.doc.len() <= case.doc.len());
        }
    }

    #[test]
    fn fuzz_stream_is_clean_on_production_engines() {
        let cfg = FuzzConfig {
            seed: 11,
            iters: 150,
            ..FuzzConfig::default()
        };
        let report = fuzz_stream(&cfg, StreamMutation::None);
        assert_eq!(report.iters_run, 150);
        assert!(report.clean(), "divergences: {:?}", report.failures);
    }

    #[test]
    fn malformed_documents_stream_prefixes_then_fail_like_the_batch_run() {
        // Unclosed root: the session fails at finish, after matches in
        // completed windows were already delivered.
        let case = Case {
            pattern: "a.*b".to_owned(),
            alphabet: "ab".to_owned(),
            doc: b"<a><b></b><b></b>".to_vec(),
            chunk_sizes: vec![1, 4],
        };
        assert_eq!(run_stream_case(&case, StreamMutation::None), None);
    }
}
