//! The cross-engine oracle runner: one case, every evaluation path.
//!
//! Five paths answer the same query:
//!
//! 1. **DOM oracle** — decode the tag stream to a materialized tree and
//!    evaluate by root paths (`st_baseline::dom`).  Ground truth on
//!    well-formed input; rejects everything else.
//! 2. **Stack baseline** — the classical pushdown evaluator
//!    (`st_baseline::stack`).
//! 3. **Event plan** — `CompiledQuery` over the scanned tag stream, using
//!    whichever backend the classifier picked (registerless DFA, HAR
//!    register program, or stack).
//! 4. **Fused** — the single-pass byte→automaton engine
//!    ([`st_core::engine`]), which must also reproduce the `Scanner`'s
//!    error diagnostics byte-for-byte.
//! 5. **Chunked** — the speculative data-parallel path at each requested
//!    chunk size (registerless strategy only; other strategies have no
//!    chunked path and are skipped).
//!
//! Comparison groups:
//!
//! * **Tokenizable input** (the `Scanner` yields a tag stream): event plan,
//!   fused, and every chunked variant must return identical match sets —
//!   even when the stream is not a well-formed tree.
//! * **Well-formed input** (the tag stream decodes to a tree): all five
//!   paths must agree with the DOM oracle on the match set, and the
//!   boolean EL/AL verdicts (`exists_branch`/`forall_branches`) must agree
//!   across the DOM oracle, the event plan, and the stack baseline.
//! * **Malformed input**: the fused and chunked paths must reject with
//!   exactly the `Scanner`'s diagnostic.
//!
//! Panics in any engine are caught and treated as an outcome class of
//! their own, so a `debug_assert` tripping inside an engine is reported
//! as a divergence instead of aborting the fuzz run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use st_automata::{compile_regex, Alphabet, Dfa, Tag};
use st_baseline::{dom, stack::StackEvaluator};
use st_core::prelude::{EngineCheckpoint, FusedQuery, Limits, Query, SessionError, SessionOutcome};
use st_trees::{encode::markup_decode, xml::Scanner, TreeError};

use crate::gen::Case;

/// Interior cut positions for "cut every `size` bytes", capped at 16 cuts
/// so pathological sizes (1 on a multi-kilobyte document) don't spawn a
/// thread per byte.  The interesting behaviour is at the boundaries, and
/// 16 adversarial boundaries exercise it fully.
pub fn cuts_for(size: usize, len: usize) -> Vec<usize> {
    if size == 0 {
        return Vec::new();
    }
    (1..=16usize)
        .map(|i| i * size)
        .take_while(|&c| c < len)
        .collect()
}

/// Which evaluation path produced an outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineId {
    /// `st_baseline::dom`.
    DomOracle,
    /// `st_baseline::stack`.
    StackBaseline,
    /// `CompiledQuery` over the scanned tag stream.
    EventPlan,
    /// The fused byte engine, sequential (structural-index path).
    Fused,
    /// The fused byte engine with the scalar path forced — the oracle
    /// twin of [`EngineId::Fused`]: the two must agree bitwise on
    /// matches, counts, error diagnostics, and checkpoint bytes.
    FusedScalar,
    /// The data-parallel byte engine at this chunk size.
    Chunked(usize),
    /// The fused engine run through the resilient session layer in one
    /// uninterrupted feed (the reference for the resumed runs).
    Session,
    /// The fused engine driven through checkpoint/serialize/resume at
    /// every cut of this chunk size.
    Resumed(usize),
}

impl std::fmt::Display for EngineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineId::DomOracle => write!(f, "dom-oracle"),
            EngineId::StackBaseline => write!(f, "stack-baseline"),
            EngineId::EventPlan => write!(f, "event-plan"),
            EngineId::Fused => write!(f, "fused"),
            EngineId::FusedScalar => write!(f, "fused-scalar"),
            EngineId::Chunked(s) => write!(f, "chunked({s})"),
            EngineId::Session => write!(f, "session"),
            EngineId::Resumed(s) => write!(f, "resumed({s})"),
        }
    }
}

/// Whether an evaluation path supports byte-level checkpoint/resume.
/// The fused family carries O(1) (or O(depth), for the pushdown
/// fallback) session state and resumes; the buffered paths — DOM oracle,
/// stack baseline, event plan — evaluate whole materialized inputs and
/// return the documented typed error.
pub fn resume_support(id: EngineId) -> Result<(), SessionError> {
    match id {
        EngineId::Fused
        | EngineId::FusedScalar
        | EngineId::Chunked(_)
        | EngineId::Session
        | EngineId::Resumed(_) => Ok(()),
        EngineId::DomOracle | EngineId::StackBaseline | EngineId::EventPlan => {
            Err(SessionError::ResumeUnsupported {
                engine: id.to_string(),
            })
        }
    }
}

/// What an engine said about a case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Selected node ids in document order.
    Matches(Vec<usize>),
    /// The engine rejected the input with this diagnostic (the
    /// `TreeError`'s debug form, so error *classes and positions* are
    /// compared, not just prose).
    Rejected(String),
    /// The engine panicked.
    Panicked(String),
}

impl Outcome {
    fn from_result(r: Result<Vec<usize>, TreeError>) -> Outcome {
        match r {
            Ok(v) => Outcome::Matches(v),
            Err(e) => Outcome::Rejected(format!("{e:?}")),
        }
    }

    /// Maps a session-layer result: parse errors keep the inner
    /// `TreeError`'s debug form so error classes and positions stay
    /// comparable with the sequential paths; other session errors
    /// (worker failures, limits) keep their own debug form.
    fn from_session_result(r: Result<Vec<usize>, SessionError>) -> Outcome {
        match r {
            Ok(v) => Outcome::Matches(v),
            Err(SessionError::Parse(e)) => Outcome::Rejected(format!("{e:?}")),
            Err(e) => Outcome::Rejected(format!("{e:?}")),
        }
    }
}

/// A disagreement between two paths, with enough context to read.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// One side.
    pub left: (EngineId, Outcome),
    /// The other.
    pub right: (EngineId, Outcome),
    /// Which comparison group tripped.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} -> {:?} vs {} -> {:?}",
            self.detail, self.left.0, self.left.1, self.right.0, self.right.1
        )
    }
}

/// Deliberately injected engine bugs, used by the harness's own mutation
/// tests to prove the oracle catches and shrinks real divergences.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Production engines only.
    #[default]
    None,
    /// The stack baseline pushes the *post-transition* state at opens, so
    /// every close restores the wrong state — the classic stack-discipline
    /// off-by-one.
    StackPushesSuccessor,
    /// The event plan drops its first match — a minimal emission bug.
    PlanDropsFirstMatch,
    /// The checkpoint/resume driver drops the first byte after the first
    /// resume seam — the classic off-by-one a handoff protocol can make.
    ResumeSkipsByte,
}

impl Mutation {
    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Mutation> {
        match name {
            "none" => Some(Mutation::None),
            "stack-pushes-successor" => Some(Mutation::StackPushesSuccessor),
            "plan-drops-first-match" => Some(Mutation::PlanDropsFirstMatch),
            "resume-skips-byte" => Some(Mutation::ResumeSkipsByte),
            _ => None,
        }
    }

    /// All injectable faults, for `--help` text and self-tests.
    pub const ALL: &'static [(&'static str, Mutation)] = &[
        ("stack-pushes-successor", Mutation::StackPushesSuccessor),
        ("plan-drops-first-match", Mutation::PlanDropsFirstMatch),
        ("resume-skips-byte", Mutation::ResumeSkipsByte),
    ];
}

/// Boolean EL/AL verdicts per path; the event-plan and stack entries are
/// panic-wrapped because the register programs are exercised through
/// acceptor adapters here.
struct Verdicts {
    dom: (bool, bool),
    plan: Result<(bool, bool), String>,
    stack: Result<(bool, bool), String>,
}

/// Everything observed while running one case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Per-engine outcomes, in the order the paths ran.
    pub outcomes: Vec<(EngineId, Outcome)>,
    /// The first disagreement found, if any.
    pub divergence: Option<Divergence>,
    /// Whether the `Scanner` tokenized the document.
    pub tokenizable: bool,
    /// Whether the tag stream decoded to a well-formed tree.
    pub well_formed: bool,
}

fn scanner_tags(bytes: &[u8], g: &Alphabet) -> Result<Vec<Tag>, TreeError> {
    Scanner::new(bytes, g).collect()
}

fn catching<T>(f: impl FnOnce() -> T + std::panic::UnwindSafe) -> Result<T, String> {
    catch_unwind(f).map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        }
    })
}

/// The intentionally broken pushdown evaluator behind
/// [`Mutation::StackPushesSuccessor`]: structurally the same loop as
/// `StackEvaluator::select_indices`, except opens push the successor
/// state instead of the current one.
fn buggy_stack_select(dfa: &Dfa, tags: &[Tag]) -> Vec<usize> {
    let mut state = dfa.init();
    let mut stack = Vec::new();
    let mut out = Vec::new();
    let mut node = 0usize;
    for &tag in tags {
        match tag {
            Tag::Open(l) => {
                let next = dfa.step(state, l.0 as usize);
                stack.push(next); // BUG: should push `state`.
                state = next;
                if dfa.is_accepting(state) {
                    out.push(node);
                }
                node += 1;
            }
            Tag::Close(_) => {
                state = stack.pop().unwrap_or_else(|| dfa.init());
            }
        }
    }
    out
}

/// Maps a session run to an [`Outcome`]: the session layer's own typed
/// errors are compared verbatim (debug form), since the resumed run must
/// reproduce the uninterrupted session's error exactly — same variant,
/// same absolute offset.
fn session_outcome(r: Result<SessionOutcome, SessionError>) -> Outcome {
    match r {
        Ok(o) => Outcome::Matches(o.matches),
        Err(e) => Outcome::Rejected(format!("{e:?}")),
    }
}

/// Drives `doc` through the session layer with a full checkpoint
/// round-trip (serialize + deserialize) at every cut, concatenating the
/// per-segment match sets.  Under [`Mutation::ResumeSkipsByte`] the first
/// resume seam drops one byte — the off-by-one this harness must catch.
fn run_resumed(
    fused: &FusedQuery,
    doc: &[u8],
    cuts: &[usize],
    mutation: Mutation,
) -> Result<SessionOutcome, SessionError> {
    let mut matches = Vec::new();
    let mut session = fused.session(Limits::none());
    let mut prev = 0usize;
    let mut first_seam = true;
    for &cut in cuts {
        if cut <= prev || cut > doc.len() {
            continue;
        }
        session.feed(&doc[prev..cut])?;
        let frozen = EngineCheckpoint::from_bytes(&session.checkpoint()?.to_bytes())?;
        matches.extend_from_slice(session.matches());
        session = fused.resume(&frozen, Limits::none())?;
        prev = cut;
        if first_seam && mutation == Mutation::ResumeSkipsByte && cut < doc.len() {
            prev = cut + 1; // BUG under test: a byte falls into the seam.
            first_seam = false;
        }
    }
    session.feed(&doc[prev..])?;
    let tail = session.finish()?;
    matches.extend_from_slice(&tail.matches);
    // The cursor rides inside every checkpoint, so the tail session's
    // cursor covers the whole resumed stream.
    Ok(SessionOutcome {
        matches,
        nodes: tail.nodes,
        cursor: tail.cursor,
    })
}

/// Drives two sessions over `doc` in lockstep — the structural-index
/// path and the forced-scalar path — checkpointing at every cut, and
/// reports the first place they are not bitwise identical: a feed
/// accepting on one side and erroring on the other, different match
/// prefixes, or different serialized checkpoint bytes.  This is the
/// strongest form of the simd-vs-scalar identity: not just the final
/// answer, but every intermediate frozen state must agree.
fn simd_scalar_lockstep(fused: &FusedQuery, doc: &[u8], cuts: &[usize]) -> Result<(), String> {
    let mut a = fused.session(Limits::none());
    let mut b = fused.session(Limits::none().with_force_scalar(true));
    let mut prev = 0usize;
    for &cut in cuts {
        if cut <= prev || cut > doc.len() {
            continue;
        }
        let ra = a.feed(&doc[prev..cut]);
        let rb = b.feed(&doc[prev..cut]);
        match (&ra, &rb) {
            (Ok(()), Ok(())) => {}
            (Err(ea), Err(eb)) => {
                return if format!("{ea:?}") == format!("{eb:?}") {
                    Ok(())
                } else {
                    Err(format!(
                        "feed [..{cut}]: indexed error {ea:?} vs scalar error {eb:?}"
                    ))
                };
            }
            _ => {
                return Err(format!("feed [..{cut}]: indexed {ra:?} vs scalar {rb:?}"));
            }
        }
        if a.matches() != b.matches() {
            return Err(format!(
                "matches after [..{cut}]: indexed {:?} vs scalar {:?}",
                a.matches(),
                b.matches()
            ));
        }
        let ca = a.checkpoint().map(|c| c.to_bytes());
        let cb = b.checkpoint().map(|c| c.to_bytes());
        match (&ca, &cb) {
            (Ok(xa), Ok(xb)) if xa == xb => {}
            _ => {
                return Err(format!(
                    "checkpoint bytes at {cut} differ: indexed {} vs scalar {}",
                    ca.map(|v| v.len().to_string())
                        .unwrap_or_else(|e| format!("{e:?}")),
                    cb.map(|v| v.len().to_string())
                        .unwrap_or_else(|e| format!("{e:?}")),
                ));
            }
        }
        prev = cut;
    }
    let fa = a.feed(&doc[prev..]).and_then(|()| a.finish());
    let fb = b.feed(&doc[prev..]).and_then(|()| b.finish());
    let (da, db) = (format!("{fa:?}"), format!("{fb:?}"));
    if da != db {
        return Err(format!("finish: indexed {da} vs scalar {db}"));
    }
    Ok(())
}

/// Runs every evaluation path on `case` and cross-checks the comparison
/// groups described in the module docs.  `mutation` injects a deliberate
/// engine fault (or [`Mutation::None`] for production behaviour).
pub fn run_case(case: &Case, mutation: Mutation) -> CaseOutcome {
    let g = Alphabet::of_chars(&case.alphabet);
    let mut outcomes: Vec<(EngineId, Outcome)> = Vec::new();

    let Ok(dfa) = compile_regex(&case.pattern, &g) else {
        // Patterns are generated to compile; an uncompilable corpus entry
        // is inert rather than a divergence.
        return CaseOutcome {
            outcomes,
            divergence: None,
            tokenizable: false,
            well_formed: false,
        };
    };
    let scanned = scanner_tags(&case.doc, &g);
    let tokenizable = scanned.is_ok();

    // --- Byte-level paths -------------------------------------------------
    let query = match Query::from_dfa(&dfa, &g) {
        Ok(q) => q,
        Err(_) => {
            // Composite table over budget: byte paths are unavailable by
            // design, nothing to differentiate.
            return CaseOutcome {
                outcomes,
                divergence: None,
                tokenizable,
                well_formed: false,
            };
        }
    };
    let plan = query.plan();
    let fused = query.fused();
    let fused_sel = match catching(AssertUnwindSafe(|| fused.select_bytes(&case.doc))) {
        Ok(r) => Outcome::from_result(r),
        Err(m) => Outcome::Panicked(m),
    };
    let fused_cnt = catching(AssertUnwindSafe(|| fused.count_bytes(&case.doc)));
    outcomes.push((EngineId::Fused, fused_sel.clone()));

    // --- simd-vs-scalar oracle pair ---------------------------------------
    // The same query with the scalar byte path forced must be bitwise
    // identical to the indexed run: match sets, counts, and error
    // diagnostics here; intermediate checkpoint bytes via the lockstep
    // below.
    let scalar_query = Query::from_dfa(&dfa, &g)
        .expect("scalar twin compiles iff the indexed query compiled")
        .with_force_scalar(true);
    let sfused = scalar_query.fused();
    let scalar_sel = match catching(AssertUnwindSafe(|| sfused.select_bytes(&case.doc))) {
        Ok(r) => Outcome::from_result(r),
        Err(m) => Outcome::Panicked(m),
    };
    let scalar_cnt = catching(AssertUnwindSafe(|| sfused.count_bytes(&case.doc)));
    outcomes.push((EngineId::FusedScalar, scalar_sel.clone()));
    let mut lockstep: Option<String> = None;
    for &s in &case.chunk_sizes {
        let cuts = cuts_for(s, case.doc.len());
        let r = catching(AssertUnwindSafe(|| {
            simd_scalar_lockstep(fused, &case.doc, &cuts)
        }));
        match r {
            Ok(Ok(())) => {}
            Ok(Err(m)) | Err(m) => {
                lockstep = Some(format!("cuts every {s}: {m}"));
                break;
            }
        }
    }

    let byte_dfa = fused.byte_dfa();
    let mut chunked: Vec<(usize, Outcome)> = Vec::new();
    if let Some(bd) = byte_dfa {
        for &s in &case.chunk_sizes {
            let cuts = cuts_for(s, case.doc.len());
            let o = match catching(AssertUnwindSafe(|| {
                bd.select_bytes_chunked_at(&case.doc, &cuts)
            })) {
                Ok(r) => Outcome::from_session_result(r),
                Err(m) => Outcome::Panicked(m),
            };
            outcomes.push((EngineId::Chunked(s), o.clone()));
            chunked.push((s, o));
        }
    }

    // --- Resilient session paths ------------------------------------------
    // The uninterrupted session is the reference; each chunk size drives
    // the same document through checkpoint → serialize → deserialize →
    // resume at every cut, and must reproduce it exactly.
    let session_sel = match catching(AssertUnwindSafe(|| {
        fused.run_session(&case.doc, &Limits::none())
    })) {
        Ok(r) => session_outcome(r),
        Err(m) => Outcome::Panicked(m),
    };
    outcomes.push((EngineId::Session, session_sel.clone()));
    let mut resumed: Vec<(usize, Outcome)> = Vec::new();
    for &s in &case.chunk_sizes {
        let cuts = cuts_for(s, case.doc.len());
        let o = match catching(AssertUnwindSafe(|| {
            run_resumed(fused, &case.doc, &cuts, mutation)
        })) {
            Ok(r) => session_outcome(r),
            Err(m) => Outcome::Panicked(m),
        };
        outcomes.push((EngineId::Resumed(s), o.clone()));
        resumed.push((s, o));
    }

    // --- Event-level paths ------------------------------------------------
    let mut plan_sel: Option<Outcome> = None;
    let mut stack_sel: Option<Outcome> = None;
    let mut dom_out: Option<Outcome> = None;
    let mut well_formed = false;
    let mut verdicts: Option<Verdicts> = None;

    if let Ok(tags) = &scanned {
        let p = match catching(AssertUnwindSafe(|| plan.select(tags))) {
            Ok(mut v) => {
                if mutation == Mutation::PlanDropsFirstMatch && !v.is_empty() {
                    v.remove(0);
                }
                Outcome::Matches(v)
            }
            Err(m) => Outcome::Panicked(m),
        };
        outcomes.push((EngineId::EventPlan, p.clone()));
        plan_sel = Some(p);

        match markup_decode(tags) {
            Ok(_) => {
                well_formed = true;
                let s = match catching(AssertUnwindSafe(|| {
                    if mutation == Mutation::StackPushesSuccessor {
                        buggy_stack_select(&dfa, tags)
                    } else {
                        StackEvaluator::select_indices(&dfa, tags)
                    }
                })) {
                    Ok(v) => Outcome::Matches(v),
                    Err(m) => Outcome::Panicked(m),
                };
                outcomes.push((EngineId::StackBaseline, s.clone()));
                stack_sel = Some(s);

                let d = match catching(AssertUnwindSafe(|| dom::evaluate(&dfa, tags))) {
                    Ok(Ok(r)) => {
                        verdicts = Some(Verdicts {
                            dom: (r.exists_branch, r.forall_branches),
                            plan: catching(AssertUnwindSafe(|| {
                                (plan.exists_branch(tags), plan.forall_branches(tags))
                            })),
                            stack: catching(AssertUnwindSafe(|| {
                                (
                                    StackEvaluator::exists_branch(&dfa, tags),
                                    StackEvaluator::forall_branches(&dfa, tags),
                                )
                            })),
                        });
                        Outcome::Matches(r.selected)
                    }
                    Ok(Err(e)) => Outcome::Rejected(format!("{e:?}")),
                    Err(m) => Outcome::Panicked(m),
                };
                outcomes.push((EngineId::DomOracle, d.clone()));
                dom_out = Some(d);
            }
            Err(_) => {
                // Ill-formed tag stream: the stack baseline's underflow
                // semantics intentionally differ from the registerless
                // closure, and the DOM oracle rejects.  Only the byte/event
                // agreement group applies.
            }
        }
    }

    let divergence = diff(DiffInput {
        scanned: &scanned,
        fused_sel: &fused_sel,
        fused_cnt,
        scalar_sel: &scalar_sel,
        scalar_cnt,
        lockstep,
        chunked: &chunked,
        session_sel: &session_sel,
        resumed: &resumed,
        plan_sel: plan_sel.as_ref(),
        stack_sel: stack_sel.as_ref(),
        dom_out: dom_out.as_ref(),
        verdicts,
    });

    CaseOutcome {
        outcomes,
        divergence,
        tokenizable,
        well_formed,
    }
}

/// Everything [`diff`] cross-checks, gathered so the comparison logic
/// reads as one function of one record.
struct DiffInput<'a> {
    scanned: &'a Result<Vec<Tag>, TreeError>,
    fused_sel: &'a Outcome,
    fused_cnt: Result<Result<usize, TreeError>, String>,
    scalar_sel: &'a Outcome,
    scalar_cnt: Result<Result<usize, TreeError>, String>,
    lockstep: Option<String>,
    chunked: &'a [(usize, Outcome)],
    session_sel: &'a Outcome,
    resumed: &'a [(usize, Outcome)],
    plan_sel: Option<&'a Outcome>,
    stack_sel: Option<&'a Outcome>,
    dom_out: Option<&'a Outcome>,
    verdicts: Option<Verdicts>,
}

fn diff(input: DiffInput<'_>) -> Option<Divergence> {
    let DiffInput {
        scanned,
        fused_sel,
        fused_cnt,
        scalar_sel,
        scalar_cnt,
        lockstep,
        chunked,
        session_sel,
        resumed,
        plan_sel,
        stack_sel,
        dom_out,
        verdicts,
    } = input;
    let mk = |detail: &str, l: (EngineId, &Outcome), r: (EngineId, &Outcome)| {
        Some(Divergence {
            left: (l.0, l.1.clone()),
            right: (r.0, r.1.clone()),
            detail: detail.to_owned(),
        })
    };

    // simd-vs-scalar oracle pair: the forced-scalar twin must be
    // *bitwise identical* to the indexed run — same matches, same count,
    // same error class at the same offset — on every input, including
    // untokenizable ones (this is the only group with no well-formedness
    // precondition at all).
    if scalar_sel != fused_sel {
        return mk(
            "simd-vs-scalar: select",
            (EngineId::FusedScalar, scalar_sel),
            (EngineId::Fused, fused_sel),
        );
    }
    {
        let show = |r: &Result<Result<usize, TreeError>, String>| match r {
            Ok(Ok(n)) => Outcome::Matches(vec![*n]),
            Ok(Err(e)) => Outcome::Rejected(format!("{e:?}")),
            Err(m) => Outcome::Panicked(m.clone()),
        };
        let (a, b) = (show(&scalar_cnt), show(&fused_cnt));
        if a != b {
            return mk(
                "simd-vs-scalar: count",
                (EngineId::FusedScalar, &a),
                (EngineId::Fused, &b),
            );
        }
    }
    if let Some(m) = lockstep {
        let o = Outcome::Rejected(m);
        return mk(
            "simd-vs-scalar: checkpoint lockstep",
            (EngineId::FusedScalar, &o),
            (EngineId::Fused, fused_sel),
        );
    }

    // Resume invariant: every resumed run must reproduce the
    // uninterrupted session exactly — same matches, or the same typed
    // error at the same absolute offset.
    for (s, o) in resumed {
        if o != session_sel {
            return mk(
                "resume: resumed vs uninterrupted session",
                (EngineId::Resumed(*s), o),
                (EngineId::Session, session_sel),
            );
        }
    }
    // The session layer must agree with the fused engine on the match
    // set, and on *whether* the input is acceptable.  (Diagnostics are
    // not compared across the two: the session reports its own
    // structural error, the fused path re-scans for the Scanner's.)
    match (session_sel, fused_sel) {
        (Outcome::Matches(a), Outcome::Matches(b)) if a != b => {
            return mk(
                "match-set: session vs fused",
                (EngineId::Session, session_sel),
                (EngineId::Fused, fused_sel),
            );
        }
        (Outcome::Matches(_), Outcome::Rejected(_))
        | (Outcome::Rejected(_), Outcome::Matches(_)) => {
            return mk(
                "error-class: session vs fused accept/reject",
                (EngineId::Session, session_sel),
                (EngineId::Fused, fused_sel),
            );
        }
        _ => {}
    }

    match scanned {
        Err(e) => {
            // Malformed: fused must reject with the Scanner's diagnostic.
            let want = Outcome::Rejected(format!("{e:?}"));
            if *fused_sel != want {
                return mk(
                    "error-class: fused vs scanner",
                    (EngineId::Fused, fused_sel),
                    (EngineId::DomOracle, &want),
                );
            }
            for (s, o) in chunked {
                if *o != want {
                    return mk(
                        "error-class: chunked vs scanner",
                        (EngineId::Chunked(*s), o),
                        (EngineId::Fused, &want),
                    );
                }
            }
        }
        Ok(_) => {
            // Tokenizable: the event plan is the reference for the whole
            // byte family.
            if let Some(p) = plan_sel {
                if fused_sel != p {
                    return mk(
                        "match-set: fused vs event-plan",
                        (EngineId::Fused, fused_sel),
                        (EngineId::EventPlan, p),
                    );
                }
                for (s, o) in chunked {
                    if o != fused_sel {
                        return mk(
                            "match-set: chunked vs fused",
                            (EngineId::Chunked(*s), o),
                            (EngineId::Fused, fused_sel),
                        );
                    }
                }
                // Count/select consistency on the fused path.
                if let Outcome::Matches(v) = fused_sel {
                    match fused_cnt {
                        Ok(Ok(n)) if n == v.len() => {}
                        other => {
                            let o = match other {
                                Ok(Ok(n)) => Outcome::Matches(vec![n]),
                                Ok(Err(e)) => Outcome::Rejected(format!("{e:?}")),
                                Err(m) => Outcome::Panicked(m),
                            };
                            return mk(
                                "count: fused count_bytes vs select_bytes length",
                                (EngineId::Fused, &o),
                                (EngineId::Fused, fused_sel),
                            );
                        }
                    }
                }
            }
            if let (Some(s), Some(p)) = (stack_sel, plan_sel) {
                if s != p {
                    return mk(
                        "match-set: stack vs event-plan",
                        (EngineId::StackBaseline, s),
                        (EngineId::EventPlan, p),
                    );
                }
            }
            if let (Some(d), Some(p)) = (dom_out, plan_sel) {
                if d != p {
                    return mk(
                        "match-set: dom-oracle vs event-plan",
                        (EngineId::DomOracle, d),
                        (EngineId::EventPlan, p),
                    );
                }
            }
            if let Some(v) = verdicts {
                let show = |r: &Result<(bool, bool), String>| match r {
                    Ok((e, a)) => Outcome::Rejected(format!("exists={e} forall={a}")),
                    Err(m) => Outcome::Panicked(m.clone()),
                };
                let want = Ok(v.dom);
                for (id, got) in [
                    (EngineId::EventPlan, &v.plan),
                    (EngineId::StackBaseline, &v.stack),
                ] {
                    if *got != want {
                        return mk(
                            "verdict: exists/forall branches",
                            (id, &show(got)),
                            (EngineId::DomOracle, &show(&want)),
                        );
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(pattern: &str, alphabet: &str, doc: &str, chunk_sizes: &[usize]) -> Case {
        Case {
            pattern: pattern.to_owned(),
            alphabet: alphabet.to_owned(),
            doc: doc.as_bytes().to_vec(),
            chunk_sizes: chunk_sizes.to_vec(),
        }
    }

    #[test]
    fn clean_engines_agree_on_a_simple_case() {
        let c = case("a.*b", "ab", "<a><b/><a><b/></a></a>", &[1, 3]);
        let r = run_case(&c, Mutation::None);
        assert!(r.divergence.is_none(), "{:?}", r.divergence);
        assert!(r.tokenizable && r.well_formed);
    }

    #[test]
    fn malformed_inputs_reject_consistently() {
        for doc in ["<a><b></a>", "<a", "</a>", "<a zz=>", "<a><!-- x</a>"] {
            let c = case("ab", "ab", doc, &[1]);
            let r = run_case(&c, Mutation::None);
            assert!(r.divergence.is_none(), "doc {doc:?}: {:?}", r.divergence);
        }
    }

    #[test]
    fn injected_stack_bug_is_caught() {
        let c = case("ab", "ab", "<a><b/><b/></a>", &[]);
        let r = run_case(&c, Mutation::StackPushesSuccessor);
        assert!(
            r.divergence.is_some(),
            "mutation survived: {:?}",
            r.outcomes
        );
    }

    #[test]
    fn injected_plan_bug_is_caught() {
        let c = case("a.*b", "ab", "<a><b/></a>", &[]);
        let r = run_case(&c, Mutation::PlanDropsFirstMatch);
        assert!(r.divergence.is_some());
    }

    #[test]
    fn injected_resume_bug_is_caught() {
        // The first seam lands right after the `<` of the first `<b/>`;
        // dropping the `b` leaves `</...` — a malformed close — so the
        // resumed run errors where the uninterrupted session matches.
        let c = case("a.*b", "ab", "<a><b/><b/></a>", &[4]);
        let r = run_case(&c, Mutation::ResumeSkipsByte);
        assert!(
            r.divergence.is_some(),
            "mutation survived: {:?}",
            r.outcomes
        );
    }

    #[test]
    fn resumed_paths_match_session_on_clean_and_malformed_input() {
        for doc in ["<a><b/><a><b/></a></a>", "<a><b></a>", "<a", "<a zz=>"] {
            let c = case("a.*b", "ab", doc, &[1, 3, 5]);
            let r = run_case(&c, Mutation::None);
            assert!(r.divergence.is_none(), "doc {doc:?}: {:?}", r.divergence);
        }
    }

    #[test]
    fn buffered_paths_report_resume_unsupported() {
        for id in [
            EngineId::DomOracle,
            EngineId::StackBaseline,
            EngineId::EventPlan,
        ] {
            match resume_support(id) {
                Err(SessionError::ResumeUnsupported { engine }) => {
                    assert_eq!(engine, id.to_string());
                }
                other => panic!("{id}: expected ResumeUnsupported, got {other:?}"),
            }
        }
        assert!(resume_support(EngineId::Fused).is_ok());
        assert!(resume_support(EngineId::Chunked(4)).is_ok());
    }
}
