//! Multi-query differential oracle: one shared [`QuerySet`] pass versus
//! N independent single-query runs.
//!
//! The property under test is the query-set compiler's whole contract:
//! for every generated document and every 2–8 pattern set, the shared
//! pass must produce *bitwise identical* per-query match sets and the
//! identical error verdict to running each query alone — on the shared
//! product-DFA tier **and** on the lane-simulation fallback (forced via
//! the state-budget knob), each under both the SIMD-indexed and the
//! forced-scalar byte paths.  Four shared-pass variants per case, all
//! compared against the same single-query oracle.
//!
//! Divergences shrink along three axes (drop patterns, delete byte
//! windows, structurally shrink pattern ASTs) and persist as `.mcase`
//! corpus entries next to the single-query `.case` reproducers.

use std::path::{Path, PathBuf};

use rand::prelude::*;
use st_automata::{compile_regex, Alphabet};
use st_core::{Query, QuerySet};

use crate::corpus;
use crate::gen::{case_rng, gen_case, GenConfig};
use crate::pattern::Pat;
use crate::runner::FuzzConfig;

/// One self-contained multi-query differential case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiCase {
    /// Query patterns in `compile_regex` syntax (the per-query order).
    pub patterns: Vec<String>,
    /// Alphabet characters, e.g. `"ab"`.
    pub alphabet: String,
    /// Raw document bytes.
    pub doc: Vec<u8>,
}

/// Deliberate oracle fault, used by the harness's own soundness tests:
/// a fault must be caught and shrunk, or the multi oracle has a blind
/// spot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiMutation {
    /// Production behaviour.
    None,
    /// Drops the last match of the last non-empty per-query result from
    /// every shared pass — the attribution bug the oracle must see.
    DropLastMatch,
}

/// Draws one multi-query case from `rng`: the single-case generator's
/// document and pattern, plus 1–7 extra patterns over the same alphabet.
pub fn gen_multi_case(rng: &mut StdRng, cfg: &GenConfig) -> (MultiCase, Vec<Pat>) {
    let (case, first) = gen_case(rng, cfg);
    let g = Alphabet::of_chars(&case.alphabet);
    let chars: Vec<char> = case.alphabet.chars().collect();
    let mut pats = vec![first];
    let extra = rng.gen_range(1usize..=7);
    while pats.len() < 1 + extra {
        let p = Pat::random(rng, &chars, 3);
        if compile_regex(&p.render(), &g).is_ok() {
            pats.push(p);
        }
    }
    let patterns = pats.iter().map(Pat::render).collect();
    (
        MultiCase {
            patterns,
            alphabet: case.alphabet,
            doc: case.doc,
        },
        pats,
    )
}

/// The single-query oracle: each pattern run alone through the fused
/// engine.  `Err` carries the (shared, document-level) error rendering.
fn independent_runs(
    case: &MultiCase,
    g: &Alphabet,
    force_scalar: bool,
) -> Option<Vec<Result<Vec<usize>, String>>> {
    let mut out = Vec::with_capacity(case.patterns.len());
    for p in &case.patterns {
        let q = Query::compile(p, g).ok()?.with_force_scalar(force_scalar);
        out.push(q.select(&case.doc).map_err(|e| e.to_string()));
    }
    Some(out)
}

/// One shared pass at the given budget/byte-path, with the fault knob
/// applied to its answer.
fn shared_pass(
    case: &MultiCase,
    g: &Alphabet,
    budget: usize,
    force_scalar: bool,
    mutation: MultiMutation,
) -> Option<Result<Vec<Vec<usize>>, String>> {
    let mut set = QuerySet::compile_with_budget(&case.patterns, g, budget).ok()?;
    set.set_force_scalar(force_scalar);
    let mut result = set.select_all(&case.doc).map_err(|e| e.to_string());
    if mutation == MultiMutation::DropLastMatch {
        if let Ok(per) = result.as_mut() {
            if let Some(last) = per.iter_mut().rev().find(|ids| !ids.is_empty()) {
                last.pop();
            }
        }
    }
    Some(result)
}

/// Runs one case through every shared-pass variant and compares each
/// against the independent-run oracle.  Returns the first disagreement,
/// or `None` when all variants agree (or the case is not runnable, e.g.
/// a pattern no longer compiles after shrinking).
pub fn run_multi_case(case: &MultiCase, mutation: MultiMutation) -> Option<String> {
    if case.patterns.is_empty() {
        return None;
    }
    let g = Alphabet::of_chars(&case.alphabet);
    for force_scalar in [false, true] {
        let singles = independent_runs(case, &g, force_scalar)?;
        for budget in [st_core::DEFAULT_PRODUCT_BUDGET, 0] {
            let shared = shared_pass(case, &g, budget, force_scalar, mutation)?;
            let variant = format!(
                "budget={budget} {}",
                if force_scalar { "scalar" } else { "indexed" }
            );
            match &shared {
                Err(set_err) => {
                    // A document-level error must hit every independent
                    // run with the identical rendering.
                    for (i, s) in singles.iter().enumerate() {
                        match s {
                            Err(e) if e == set_err => {}
                            Err(e) => {
                                return Some(format!(
                                    "[{variant}] query {i}: shared error {set_err:?} \
                                     vs independent error {e:?}"
                                ));
                            }
                            Ok(ids) => {
                                return Some(format!(
                                    "[{variant}] query {i}: shared pass errored \
                                     ({set_err:?}) but independent run matched {ids:?}"
                                ));
                            }
                        }
                    }
                }
                Ok(per) => {
                    for (i, (s, got)) in singles.iter().zip(per).enumerate() {
                        match s {
                            Ok(ids) if ids == got => {}
                            Ok(ids) => {
                                return Some(format!(
                                    "[{variant}] query {i} ({:?}): shared {got:?} \
                                     vs independent {ids:?}",
                                    case.patterns[i]
                                ));
                            }
                            Err(e) => {
                                return Some(format!(
                                    "[{variant}] query {i}: independent run errored \
                                     ({e:?}) but shared pass matched {got:?}"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Minimizes a diverging multi case while it keeps diverging.  `pats`
/// is the generating pattern AST list when available (corpus replays
/// have none and skip that axis).
pub fn shrink_multi(case: &MultiCase, pats: Option<&[Pat]>, mutation: MultiMutation) -> MultiCase {
    let mut budget = 600usize;
    let diverges = |c: &MultiCase, budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        run_multi_case(c, mutation).is_some()
    };
    if !diverges(case, &mut budget) {
        return case.clone();
    }
    let mut best = case.clone();
    let mut cur_pats: Option<Vec<Pat>> = pats.map(|p| p.to_vec());
    loop {
        let mut any = false;
        // Axis 1: drop whole patterns (the biggest reduction first).
        let mut i = 0usize;
        while best.patterns.len() > 1 && i < best.patterns.len() && budget > 0 {
            let mut cand = best.clone();
            cand.patterns.remove(i);
            if diverges(&cand, &mut budget) {
                best = cand;
                if let Some(ps) = cur_pats.as_mut() {
                    ps.remove(i);
                }
                any = true;
            } else {
                i += 1;
            }
        }
        // Axis 2: byte-window deletion at halving granularity.
        let mut w = best.doc.len() / 2;
        while w >= 1 && budget > 0 {
            let mut at = 0usize;
            while at + w <= best.doc.len() && budget > 0 {
                let mut cand = best.clone();
                cand.doc.drain(at..at + w);
                if diverges(&cand, &mut budget) {
                    best = cand;
                    any = true;
                } else {
                    at += w;
                }
            }
            w /= 2;
        }
        // Axis 3: structural shrink of each surviving pattern AST.
        if let Some(ps) = cur_pats.as_mut() {
            let g = Alphabet::of_chars(&best.alphabet);
            for (qi, p) in ps.iter_mut().enumerate() {
                let mut progress = true;
                while progress && budget > 0 {
                    progress = false;
                    for cand_pat in p.shrink_candidates() {
                        let rendered = cand_pat.render();
                        if compile_regex(&rendered, &g).is_err() {
                            continue;
                        }
                        let mut cand = best.clone();
                        cand.patterns[qi] = rendered;
                        if diverges(&cand, &mut budget) {
                            best = cand;
                            *p = cand_pat;
                            any = true;
                            progress = true;
                            break;
                        }
                    }
                }
            }
        }
        if !any || budget == 0 {
            break;
        }
    }
    best
}

/// One divergence found by the multi-query loop.
#[derive(Clone, Debug)]
pub struct MultiFuzzFailure {
    /// Iteration that produced the case (regenerate with
    /// [`case_rng`]`(seed, iter)`).
    pub iter: u64,
    /// The generated input.
    pub case: MultiCase,
    /// The delta-debugged minimal reproducer.
    pub shrunk: MultiCase,
    /// Human-readable description of the first disagreement.
    pub detail: String,
    /// Corpus file written, when persistence is on.
    pub corpus_path: Option<PathBuf>,
}

/// Aggregate statistics of a multi-query fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct MultiFuzzReport {
    /// Iterations actually executed.
    pub iters_run: u64,
    /// All divergences found.
    pub failures: Vec<MultiFuzzFailure>,
}

impl MultiFuzzReport {
    /// True when no divergence was found.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Injected fault for the loop; [`MultiMutation::None`] in production.
/// Rides in via a dedicated field-free parameter (the single-query
/// [`FuzzConfig`] carries everything else: seed, iters, generator
/// tunables, corpus directory, failure cap).
pub fn fuzz_multi(cfg: &FuzzConfig, mutation: MultiMutation) -> MultiFuzzReport {
    let mut report = MultiFuzzReport::default();
    for iter in 0..cfg.iters {
        let mut rng = case_rng(cfg.seed, iter);
        let (case, pats) = gen_multi_case(&mut rng, &cfg.gen);
        report.iters_run += 1;
        let Some(detail) = run_multi_case(&case, mutation) else {
            continue;
        };
        let shrunk = shrink_multi(&case, Some(&pats), mutation);
        let corpus_path = cfg.corpus_dir.as_ref().and_then(|dir| {
            corpus::write_multi_entry(
                dir,
                &corpus::multi_entry_name(cfg.seed, iter),
                &shrunk,
                &detail,
            )
            .ok()
        });
        report.failures.push(MultiFuzzFailure {
            iter,
            case,
            shrunk,
            detail,
            corpus_path,
        });
        if cfg.max_failures > 0 && report.failures.len() >= cfg.max_failures {
            break;
        }
    }
    report
}

/// Replays every `.mcase` corpus entry under `dir` with the production
/// oracle; returns the diverging entries.
pub fn replay_multi_corpus(dir: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut bad = Vec::new();
    for (path, case) in corpus::load_multi_corpus(dir)? {
        if let Some(detail) = run_multi_case(&case, MultiMutation::None) {
            bad.push((path, detail));
        }
    }
    Ok(bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        for iter in 0..25u64 {
            let (a, _) = gen_multi_case(&mut case_rng(42, iter), &cfg);
            let (b, _) = gen_multi_case(&mut case_rng(42, iter), &cfg);
            assert_eq!(a, b);
            assert!((2..=8).contains(&a.patterns.len()));
        }
    }

    #[test]
    fn injected_attribution_fault_is_caught_and_shrunk() {
        let cfg = FuzzConfig {
            seed: 3,
            iters: 120,
            max_failures: 1,
            ..FuzzConfig::default()
        };
        let report = fuzz_multi(&cfg, MultiMutation::DropLastMatch);
        let failure = report
            .failures
            .first()
            .expect("dropped-match fault must be detected within 120 iterations");
        assert!(
            run_multi_case(&failure.shrunk, MultiMutation::DropLastMatch).is_some(),
            "shrunk case must still reproduce"
        );
        assert!(failure.shrunk.patterns.len() <= failure.case.patterns.len());
        assert!(failure.shrunk.doc.len() <= failure.case.doc.len());
    }
}
