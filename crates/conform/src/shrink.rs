//! Delta-debugging a diverging case to a minimal reproducer.
//!
//! Greedy, budgeted minimization over four axes, repeated to a fixpoint:
//!
//! 1. **Tree structure** — when the document decodes to a tree, the
//!    decoration is first normalized away (plain skeleton re-render),
//!    then whole subtrees are deleted or promoted to the root, which is
//!    where most of the reduction happens.
//! 2. **Raw bytes** — window deletion at halving granularity, the only
//!    axis available for inputs that don't tokenize (and it also trims
//!    leftover text/declarations from tree-shaped cases).
//! 3. **Chunk-size list** — drop sizes that aren't needed to reproduce.
//! 4. **Pattern** — structural shrinking over the generator's AST
//!    ([`Pat::shrink_candidates`]), kept from the generating run; corpus
//!    replays have no AST and skip this axis.
//!
//! Every adoption strictly decreases a finite measure (tag count, byte
//! length, list length, or pattern weight), and a global budget bounds
//! the number of oracle invocations, so shrinking always terminates.

use st_automata::{compile_regex, Alphabet, Tag};
use st_trees::{encode::markup_decode, xml};

use crate::engines::{run_case, Mutation};
use crate::gen::Case;
use crate::pattern::Pat;

/// Number of tree nodes (opening events) in the case's document, if it
/// tokenizes.  The harness's own acceptance tests use this to assert
/// reproducer size.
pub fn tree_nodes(case: &Case) -> Option<usize> {
    let g = Alphabet::of_chars(&case.alphabet);
    let tags: Result<Vec<Tag>, _> = xml::Scanner::new(&case.doc, &g).collect();
    tags.ok()
        .map(|ts| ts.iter().filter(|t| matches!(t, Tag::Open(_))).count())
}

struct Oracle {
    mutation: Mutation,
    budget: usize,
}

impl Oracle {
    fn diverges(&mut self, case: &Case) -> bool {
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        run_case(case, self.mutation).divergence.is_some()
    }
}

/// Minimizes `case` while it keeps diverging under `mutation`.  `pat` is
/// the generating pattern AST when available.  Returns the original case
/// unchanged if it does not diverge (nothing to minimize).
pub fn shrink(case: &Case, pat: Option<&Pat>, mutation: Mutation) -> Case {
    let mut oracle = Oracle {
        mutation,
        budget: 800,
    };
    if !oracle.diverges(case) {
        return case.clone();
    }
    let mut best = case.clone();
    let mut cur_pat = pat.cloned();
    loop {
        let mut any = false;
        any |= shrink_structural(&mut best, &mut oracle);
        any |= shrink_bytes(&mut best, &mut oracle);
        any |= shrink_chunks(&mut best, &mut oracle);
        if let Some(p) = cur_pat.as_mut() {
            any |= shrink_pattern(&mut best, p, &mut oracle);
        }
        if !any || oracle.budget == 0 {
            break;
        }
    }
    best
}

/// Tokenizes the current document; `None` when the scanner rejects it.
fn tags_of(case: &Case, g: &Alphabet) -> Option<Vec<Tag>> {
    xml::Scanner::new(&case.doc, g)
        .collect::<Result<Vec<_>, _>>()
        .ok()
}

/// Axis 1: decoration normalization, subtree deletion, subtree promotion.
fn shrink_structural(best: &mut Case, oracle: &mut Oracle) -> bool {
    let g = Alphabet::of_chars(&best.alphabet);
    let mut any = false;

    // Normalize decoration first so later candidates re-render cleanly.
    if let Some(tags) = tags_of(best, &g) {
        if markup_decode(&tags).is_err() {
            return false;
        }
        let plain = xml::write_events(&tags, &g).into_bytes();
        if plain.len() < best.doc.len() {
            let cand = Case {
                doc: plain,
                ..best.clone()
            };
            if oracle.diverges(&cand) {
                *best = cand;
                any = true;
            }
        }
    } else {
        return false;
    }

    let mut progress = true;
    while progress && oracle.budget > 0 {
        progress = false;
        let Some(tags) = tags_of(best, &g) else { break };
        if markup_decode(&tags).is_err() {
            break;
        }
        let n_nodes = tags.iter().filter(|t| matches!(t, Tag::Open(_))).count();
        // Deleting a subtree removes the most at once; promotion handles
        // the case where only a deep fragment matters.
        'nodes: for node in (0..n_nodes).rev() {
            let Some((start, end)) = node_span(&tags, node) else {
                continue;
            };
            let deleted: Vec<Tag> = tags[..start]
                .iter()
                .chain(&tags[end + 1..])
                .copied()
                .collect();
            let promoted: Vec<Tag> = tags[start..=end].to_vec();
            for cand_tags in [deleted, promoted] {
                if cand_tags.is_empty() || cand_tags.len() >= tags.len() {
                    continue;
                }
                let cand = Case {
                    doc: xml::write_events(&cand_tags, &g).into_bytes(),
                    ..best.clone()
                };
                if oracle.diverges(&cand) {
                    *best = cand;
                    any = true;
                    progress = true;
                    break 'nodes;
                }
            }
        }
    }
    any
}

/// The inclusive tag index range `[open, close]` of node `node` (in
/// document order) inside a balanced tag stream.
fn node_span(tags: &[Tag], node: usize) -> Option<(usize, usize)> {
    let mut seen = 0usize;
    let mut start = None;
    for (i, t) in tags.iter().enumerate() {
        if matches!(t, Tag::Open(_)) {
            if seen == node {
                start = Some(i);
                break;
            }
            seen += 1;
        }
    }
    let start = start?;
    let mut depth = 0i64;
    for (i, t) in tags.iter().enumerate().skip(start) {
        depth += match t {
            Tag::Open(_) => 1,
            Tag::Close(_) => -1,
        };
        if depth == 0 {
            return Some((start, i));
        }
    }
    None
}

/// Axis 2: byte-window deletion at halving granularity.
fn shrink_bytes(best: &mut Case, oracle: &mut Oracle) -> bool {
    let mut any = false;
    let mut w = best.doc.len() / 2;
    while w >= 1 && oracle.budget > 0 {
        let mut i = 0usize;
        while i + w <= best.doc.len() && oracle.budget > 0 {
            let mut cand = best.clone();
            cand.doc.drain(i..i + w);
            if oracle.diverges(&cand) {
                *best = cand;
                any = true;
            } else {
                i += w;
            }
        }
        w /= 2;
    }
    any
}

/// Axis 3: drop chunk sizes not needed to reproduce.
fn shrink_chunks(best: &mut Case, oracle: &mut Oracle) -> bool {
    let mut any = false;
    let mut i = 0usize;
    while i < best.chunk_sizes.len() && oracle.budget > 0 {
        let mut cand = best.clone();
        cand.chunk_sizes.remove(i);
        if oracle.diverges(&cand) {
            *best = cand;
            any = true;
        } else {
            i += 1;
        }
    }
    any
}

/// Axis 4: structural pattern shrinking over the generator's AST.
fn shrink_pattern(best: &mut Case, cur: &mut Pat, oracle: &mut Oracle) -> bool {
    let g = Alphabet::of_chars(&best.alphabet);
    let mut any = false;
    let mut progress = true;
    while progress && oracle.budget > 0 {
        progress = false;
        for cand_pat in cur.shrink_candidates() {
            let rendered = cand_pat.render();
            if compile_regex(&rendered, &g).is_err() {
                continue;
            }
            let cand = Case {
                pattern: rendered,
                ..best.clone()
            };
            if oracle.diverges(&cand) {
                *best = cand;
                *cur = cand_pat;
                any = true;
                progress = true;
                break;
            }
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_stack_bug_shrinks_to_a_tiny_tree() {
        let case = Case {
            pattern: "ab".to_owned(),
            alphabet: "ab".to_owned(),
            doc: b"<a><a><b/><b></b></a><b/><a/><b><a/></b></a>".to_vec(),
            chunk_sizes: vec![3],
        };
        let mutation = Mutation::StackPushesSuccessor;
        assert!(run_case(&case, mutation).divergence.is_some());
        let small = shrink(&case, None, mutation);
        assert!(run_case(&small, mutation).divergence.is_some());
        let nodes = tree_nodes(&small).expect("shrunk case still tokenizes");
        assert!(nodes <= 20, "shrunk to {nodes} nodes: {small:?}");
        assert!(small.doc.len() <= case.doc.len());
    }
}
