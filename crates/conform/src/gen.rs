//! Seeded, structure-aware case generation.
//!
//! Every case is derived from a single `(seed, iteration)` pair through
//! the vendored SplitMix64 generator, so a corpus filename alone is
//! enough to regenerate the unshrunk input.  Generation is biased toward
//! the shapes the paper's constructions are sensitive to: deep chains
//! (register pressure), wide fans (sibling resets), fooling-pair trees
//! from `st_core::fooling` (the Lemma 3.12 gadgets), decorated renderings
//! with attributes/comments/text (lexer stress), near-boundary chunk
//! sizes, and malformed-adjacent byte mutations.

use rand::prelude::*;
use st_automata::{compile_regex, Alphabet, Dfa, Letter, Tag};
use st_core::{fooling, Analysis};
use st_trees::{encode::markup_encode, generate, xml, Tree};

use crate::pattern::Pat;

/// Tunables for the generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Upper bound on generated tree size (nodes).
    pub max_nodes: usize,
    /// Upper bound on chain/comb depth.
    pub max_depth: usize,
    /// Fault-injection mode: *every* case gets a malformed-adjacent byte
    /// mutation (truncation, corruption, metacharacter insertion, …)
    /// instead of the default 25% of cases.  Used by the CI
    /// fault-injection smoke job.
    pub faults: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_nodes: 80,
            max_depth: 24,
            faults: false,
        }
    }
}

/// One self-contained differential test case.  Everything an engine needs
/// is here; the corpus persists exactly these four fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Case {
    /// Query pattern in `compile_regex` syntax.
    pub pattern: String,
    /// Alphabet characters, e.g. `"ab"`.
    pub alphabet: String,
    /// Raw document bytes fed to the byte-level engines.
    pub doc: Vec<u8>,
    /// Chunk sizes exercised on the data-parallel path (cuts every `s`
    /// bytes, capped; see [`crate::engines::cuts_for`]).
    pub chunk_sizes: Vec<usize>,
}

/// The per-iteration RNG: reproducible from `(seed, iter)` alone, so a
/// corpus filename identifies its generating stream without replaying
/// earlier iterations.
pub fn case_rng(seed: u64, iter: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Draws one case (and its shrinkable pattern AST) from `rng`.
pub fn gen_case(rng: &mut StdRng, cfg: &GenConfig) -> (Case, Pat) {
    let chars_str = match rng.gen_range(0u8..4) {
        0 => "ab",
        1 | 2 => "abc",
        _ => "abcd",
    };
    let g = Alphabet::of_chars(chars_str);
    let chars: Vec<char> = chars_str.chars().collect();

    let (pat, dfa) = loop {
        let p = Pat::random(rng, &chars, 3);
        if let Ok(d) = compile_regex(&p.render(), &g) {
            break (p, d);
        }
    };

    let tree = gen_tree(rng, cfg, &g, &dfa);
    let mut doc = render_doc(rng, &tree, &g);
    if cfg.faults || rng.gen_bool(0.25) {
        mutate_bytes(rng, &mut doc);
    }
    let chunk_sizes = pick_chunk_sizes(rng, doc.len());

    (
        Case {
            pattern: pat.render(),
            alphabet: chars_str.to_owned(),
            doc,
            chunk_sizes,
        },
        pat,
    )
}

/// Draws a tree shape biased toward the constructions under test.
fn gen_tree(rng: &mut StdRng, cfg: &GenConfig, g: &Alphabet, dfa: &Dfa) -> Tree {
    let ls: Vec<Letter> = g.letters().collect();
    let pick = |rng: &mut StdRng| ls[rng.gen_range(0..ls.len())];
    let max_nodes = cfg.max_nodes.max(4);
    let max_depth = cfg.max_depth.max(2);
    match rng.gen_range(0u8..12) {
        // Deep chain: register/depth pressure.
        0 | 1 => {
            let depth = rng.gen_range(1..=max_depth);
            let labels: Vec<Letter> = (0..depth).map(|_| pick(rng)).collect();
            generate::chain(&labels, depth)
        }
        // Wide fan: sibling-reset pressure.
        2 => generate::wide(pick(rng), pick(rng), rng.gen_range(1..max_nodes)),
        // Comb: alternating descent and siblings.
        3 => generate::comb(
            pick(rng),
            pick(rng),
            rng.gen_range(1..=max_depth.min(16)),
            rng.gen_range(1..=4),
        ),
        // Small perfect tree.
        4 => generate::perfect(g, rng.gen_range(2usize..=3), rng.gen_range(1u32..=3)),
        // Record-shaped document.
        5 => generate::document_like(g, rng.gen_range(1..=6), rng.gen_range(1..=5), rng.gen()),
        // K_n encodings (triple-siblings territory).
        6 if ls.len() >= 3 => {
            generate::random_kn(ls[0], ls[1], ls[2], rng.gen_range(3usize..=7), rng.gen())
        }
        // Lemma 3.12 fooling pair against a small DFA bound, when the
        // pattern's language is not E-flat.
        7 => {
            let analysis = Analysis::new(dfa);
            match fooling::eflat_fooling_pair(&analysis, rng.gen_range(1usize..=3)) {
                Some(pair) => {
                    if rng.gen_bool(0.5) {
                        pair.original
                    } else {
                        pair.pumped
                    }
                }
                None => {
                    generate::random_attachment(g, rng.gen_range(4..max_nodes), 0.55, rng.gen())
                }
            }
        }
        // General random attachment at several depth biases.
        _ => {
            let bias = [0.15, 0.4, 0.6, 0.85][rng.gen_range(0usize..4)];
            generate::random_attachment(g, rng.gen_range(2..max_nodes), bias, rng.gen())
        }
    }
}

/// Renders a tree to bytes: sometimes the plain skeleton, sometimes a
/// decorated document with the noise the scanner must skip.
fn render_doc(rng: &mut StdRng, tree: &Tree, g: &Alphabet) -> Vec<u8> {
    if rng.gen_bool(0.4) {
        xml::write_document(tree, g).into_bytes()
    } else {
        decorate(&markup_encode(tree), g, rng)
    }
}

/// Renders a tag stream with scanner noise: an optional XML declaration,
/// attributes in both quote styles, comments, text runs, whitespace, and
/// self-closing leaves.
pub fn decorate(tags: &[Tag], g: &Alphabet, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::new();
    if rng.gen_bool(0.3) {
        out.extend_from_slice(b"<?xml version=\"1.0\"?>");
    }
    let mut i = 0;
    while i < tags.len() {
        match tags[i] {
            Tag::Open(l) => {
                let leaf = matches!(tags.get(i + 1), Some(Tag::Close(l2)) if *l2 == l);
                out.push(b'<');
                out.extend_from_slice(g.symbol(l).as_bytes());
                match rng.gen_range(0u8..6) {
                    0 => out.extend_from_slice(b" id=\"x<y>\""),
                    1 => out.extend_from_slice(b" q='a/b'"),
                    2 => out.extend_from_slice(b" a=1 b = \"2\""),
                    3 => {
                        out.extend_from_slice(b" k=\"");
                        for _ in 0..rng.gen_range(0usize..12) {
                            out.push(b"abc <>/!x"[rng.gen_range(0usize..9)]);
                        }
                        out.push(b'"');
                    }
                    _ => {}
                }
                if leaf && rng.gen_bool(0.5) {
                    if rng.gen_bool(0.3) {
                        out.push(b' ');
                    }
                    out.extend_from_slice(b"/>");
                    i += 2;
                    continue;
                }
                out.push(b'>');
            }
            Tag::Close(l) => {
                out.extend_from_slice(b"</");
                out.extend_from_slice(g.symbol(l).as_bytes());
                if rng.gen_bool(0.2) {
                    out.push(b' ');
                }
                out.push(b'>');
            }
        }
        match rng.gen_range(0u8..6) {
            0 => out.extend_from_slice(b"some text"),
            1 => out.extend_from_slice(b"<!-- a <b> comment -->"),
            2 => out.extend_from_slice(b"  \n"),
            _ => {}
        }
        i += 1;
    }
    out
}

/// Applies one malformed-adjacent byte mutation in place: truncation,
/// deletion, metacharacter insertion, label corruption, duplication, or a
/// byte swap.  The result usually still *almost* tokenizes, which is
/// exactly the region where error paths diverge.
pub fn mutate_bytes(rng: &mut StdRng, doc: &mut Vec<u8>) {
    if doc.is_empty() {
        return;
    }
    match rng.gen_range(0u8..6) {
        0 => {
            let at = rng.gen_range(0..doc.len());
            doc.truncate(at);
        }
        1 => {
            let at = rng.gen_range(0..doc.len());
            doc.remove(at);
        }
        2 => {
            const META: &[u8] = b"<>/\"'!=z ";
            let at = rng.gen_range(0..=doc.len());
            doc.insert(at, META[rng.gen_range(0..META.len())]);
        }
        3 => {
            // Corrupt a name byte: unknown label, mismatched close, or a
            // still-valid rename, depending on where it lands.
            if let Some(at) = (0..doc.len())
                .map(|_| rng.gen_range(0..doc.len()))
                .find(|&p| doc[p].is_ascii_lowercase())
            {
                doc[at] = if rng.gen_bool(0.5) {
                    b'z'
                } else {
                    b'a' + rng.gen_range(0u8..4)
                };
            }
        }
        4 => {
            let start = rng.gen_range(0..doc.len());
            let end = (start + rng.gen_range(1usize..=8)).min(doc.len());
            let dup: Vec<u8> = doc[start..end].to_vec();
            let at = rng.gen_range(0..=doc.len());
            for (k, b) in dup.into_iter().enumerate() {
                doc.insert(at + k, b);
            }
        }
        _ => {
            let a = rng.gen_range(0..doc.len());
            let b = rng.gen_range(0..doc.len());
            doc.swap(a, b);
        }
    }
}

/// Picks 1–3 chunk sizes, biased toward the pathological low end and
/// near-length boundaries.
fn pick_chunk_sizes(rng: &mut StdRng, doc_len: usize) -> Vec<usize> {
    if doc_len < 2 {
        return Vec::new();
    }
    const BASE: &[usize] = &[1, 2, 3, 5, 7, 16, 64, 257, 1024];
    let mut sizes = Vec::new();
    for _ in 0..rng.gen_range(1usize..=3) {
        let s = match rng.gen_range(0u8..4) {
            0 => doc_len - 1,
            1 => doc_len / 2 + 1,
            _ => BASE[rng.gen_range(0..BASE.len())],
        };
        if s > 0 && s < doc_len && !sizes.contains(&s) {
            sizes.push(s);
        }
    }
    sizes.sort_unstable();
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        for iter in 0..50u64 {
            let (a, _) = gen_case(&mut case_rng(42, iter), &cfg);
            let (b, _) = gen_case(&mut case_rng(42, iter), &cfg);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn generated_docs_are_nonempty_mostly() {
        let cfg = GenConfig::default();
        let nonempty = (0..100u64)
            .filter(|&i| !gen_case(&mut case_rng(7, i), &cfg).0.doc.is_empty())
            .count();
        assert!(nonempty > 80, "only {nonempty}/100 nonempty docs");
    }
}
